"""Fault sweep: channel accuracy under injected hostile conditions.

The robustness companion to Figure 9: instead of co-located cache noise,
the disturbances are the discrete events the paper's Section VII/VIII
protocol must survive — a third party touching the shared line, forced
preemption of the spy, and interconnect latency spikes — injected as a
deterministic :class:`~repro.faults.FaultPlan` at increasing rates.  The
shape to reproduce: accuracy (after bounded re-synchronization) degrades
gracefully with the fault rate rather than collapsing at the first
disturbance.

This driver doubles as the CI smoke test for the self-healing runner:
``python -m repro faults --jobs 2 --retries 2 --inject-faults`` layers
*harness*-plane faults (worker kills, transient errors) on top, so the
grid completes only if retry, pool-respawn, and resync all work.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import execute_point
from repro.experiments.common import (
    common_arguments,
    execute_from_args,
    payload_bits,
    runner_arguments,
    scenario_argument,
    selected_scenarios,
    warn_legacy_run,
)
from repro.faults import FaultPlan
from repro.runner import ExperimentSpec, Point, execute
from repro.sim.rng import derive_seed

NAME = "faults"
SUMMARY = "robustness: accuracy vs injected fault rate"
POINT_FN = "repro.experiments.fault_sweep:point"

#: Expected simulation faults per million cycles (the swept axis).  A
#: 100-bit transmission at the sweep rate spans ~0.3 Mcycles, so these
#: realize 0 / ~1 / ~2-3 / ~5 fault events per transmission.
FAULT_RATES = (0.0, 4.0, 8.0, 16.0)

#: Simulation fault kinds injected by the sweep.  ``ksm_unmerge`` is
#: excluded: it severs the page outright, which tests re-sync rather
#: than graceful degradation (tests/test_faults.py covers it).
FAULT_KINDS = ("third_party_touch", "preempt", "latency_spike")

#: Measured at a moderate rate so slots are wide enough that a fault
#: perturbs bits instead of destroying the handshake every time.
SWEEP_RATE_KBPS = 500

#: Slack slots past the nominal payload length when sizing the fault
#: window (handshake + inter-bit transitions).
WINDOW_SLACK_SLOTS = 40


def point(*, scenario: str, fault_rate: float, seed: int, rate: float,
          bits: int, protocol: str | None = None) -> dict:
    """One (scenario, fault rate, trial): accuracy + resyncs used."""
    window = ProtocolParams().at_rate(rate).slot_cycles * (
        bits + WINDOW_SLACK_SLOTS
    )
    plan = FaultPlan.build_simulation(
        seed=derive_seed(seed, "fault-sweep", scenario, fault_rate),
        rate_per_mcycle=fault_rate,
        window_cycles=window,
        kinds=FAULT_KINDS,
    )
    result = execute_point(
        scenario=scenario,
        payload=payload_bits(bits),
        rate_kbps=rate,
        seed=seed,
        faults=plan.to_json(),
        protocol=protocol,
    )
    return {
        "accuracy": result.accuracy,
        "resyncs": result.resyncs,
        "faults": len(plan),
    }


def build_spec(
    seed: int = 0,
    bits: int = 100,
    fault_rates=FAULT_RATES,
    scenarios=None,
    rate_kbps: float = SWEEP_RATE_KBPS,
    trials: int = 2,
    protocol: str | None = None,
) -> ExperimentSpec:
    """The scenario × fault-rate × trial grid."""
    names = [
        s if isinstance(s, str) else s.name
        for s in (scenarios if scenarios is not None else TABLE_I)
    ]
    trials = max(1, trials)
    extra = {"protocol": protocol} if protocol else {}
    points = tuple(
        Point(
            fn=POINT_FN,
            params={
                "scenario": name,
                "fault_rate": float(fault_rate),
                "seed": seed + 101 * trial,
                "rate": float(rate_kbps),
                "bits": bits,
                **extra,
            },
            label=f"{name} f{fault_rate:g} t{trial}",
        )
        for name in names
        for fault_rate in fault_rates
        for trial in range(trials)
    )
    return ExperimentSpec(
        experiment=NAME,
        points=points,
        meta={
            "scenarios": names,
            "fault_rates": [float(r) for r in fault_rates],
            "trials": trials,
        },
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    """Average trials into per-scenario accuracy/resync curves."""
    trials = spec.meta["trials"]
    rates = spec.meta["fault_rates"]
    it = iter(values)
    curves: dict[str, list[dict]] = {}
    for name in spec.meta["scenarios"]:
        row = []
        for fault_rate in rates:
            cells = [next(it) for _ in range(trials)]
            row.append({
                "fault_rate": float(fault_rate),
                "accuracy": sum(c["accuracy"] for c in cells) / trials,
                "resyncs": sum(c["resyncs"] for c in cells) / trials,
            })
        curves[name] = row
    return {"curves": curves, "fault_rates": list(rates)}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Accuracy per (scenario, fault rate), averaged over the trials.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=..., fault_rates=..., ...)`` keyword form warns
    but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    headers = ["scenario"] + [
        f"{r:g}/Mcyc" for r in result["fault_rates"]
    ]
    rows = []
    for name, row in result["curves"].items():
        cells = []
        for cell in row:
            text = f"{cell['accuracy'] * 100:.0f}%"
            if cell["resyncs"]:
                text += f" ({cell['resyncs']:.1f} rs)"
            cells.append(text)
        rows.append([name] + cells)
    return ascii_table(
        headers, rows,
        title="Fault sweep: accuracy vs injected fault rate "
              "(rs = resyncs/transmission)",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    common_arguments(parser)
    scenario_argument(parser)
    parser.add_argument("--rate", type=float, default=SWEEP_RATE_KBPS)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument(
        "--fault-rates", type=float, nargs="+", default=list(FAULT_RATES),
        metavar="R", help="fault rates per million cycles to sweep",
    )


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(
        seed=args.seed,
        bits=args.bits,
        fault_rates=args.fault_rates,
        scenarios=selected_scenarios(args.scenario),
        rate_kbps=args.rate,
        trials=args.trials,
        protocol=args.protocol,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Ablations of the design choices DESIGN.md calls out.

* **Protocol variant** (MESI / MESIF / MOESI): the paper argues the F
  and O states do not change the E/S timing split the channel uses —
  verified by running the channel on all three.
* **Non-inclusive LLC** (Section VIII-E discussion): S-state blocks may
  be served cache-to-cache instead of from the LLC, but distinct latency
  profiles remain, so the channel survives inclusion-property changes.
* **Band-gap robustness**: per-scenario accuracy at a high rate should
  correlate with the latency gap between its two bands, the mechanism
  behind Figure 8's exceptions.
* **Home-agent directories** (Section VIII-E): the extra hop to an
  address's home directory splits every miss-service band into
  home-local/home-remote sub-bands — more latency profiles to exploit.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.scenarios import scenario_spec_by_name
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.errors import CalibrationError
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
)
from repro.mem.hierarchy import MachineConfig
from repro.mem.protocols import PROTOCOLS as _PROTOCOL_REGISTRY
from repro.runner import ExperimentSpec, Point, execute

NAME = "ablations"
SUMMARY = "DESIGN.md design-choice ablations"
POINT_FN = "repro.experiments.ablations:point"

PROTOCOLS = tuple(sorted(_PROTOCOL_REGISTRY))
FLUSH_METHODS = ("clflush", "evict")


def point(*, group: str, seed: int, **kw):
    """One ablation measurement; ``group`` selects the design knob."""
    if group == "protocol":
        session = ChannelSession(SessionConfig(
            spec=resolve_spec(TABLE_I[0].name, protocol=kw["protocol"]),
            seed=seed,
        ))
        return session.transmit(payload_bits(kw["bits"])).accuracy

    if group == "inclusion":
        try:
            session = ChannelSession(SessionConfig(
                spec=TABLE_I[1].name,  # remote scenario: LLC role matters
                seed=seed,
                machine=MachineConfig(inclusive=kw["inclusive"]),
            ))
            return session.transmit(payload_bits(kw["bits"])).accuracy
        except CalibrationError:
            return 0.0

    if group == "flush":
        method = kw["method"]
        config = SessionConfig(spec=TABLE_I[0].name, seed=seed) \
            if method == "clflush" else SessionConfig(
                spec=TABLE_I[0].name, seed=seed,
                params=ProtocolParams.for_eviction_flush(),
                flush_method="evict",
            )
        result = ChannelSession(config).transmit(payload_bits(kw["bits"]))
        return {
            "accuracy": result.accuracy,
            "rate_kbps": result.achieved_rate_kbps,
        }

    if group == "home_agent":
        from repro.mem.latency import NoiseModel
        from repro.mem.hierarchy import Machine
        from repro.sim.rng import RngStreams

        machine = Machine(
            MachineConfig(home_agent=True, noise=NoiseModel(enabled=False)),
            RngStreams(seed),
        )
        out = {}
        for addr, label in ((0x100000, "home-local"),
                            (0x101000, "home-remote")):
            machine.flush(0, addr)
            machine.load(6, addr)           # remote E placement
            _v, latency, _p = machine.load(0, addr)
            out[label] = float(latency)
        out["split_cycles"] = out["home-remote"] - out["home-local"]
        return out

    if group == "band_gap":
        spec = scenario_spec_by_name(kw["scenario"])
        scenario = spec.scenario
        session = ChannelSession(SessionConfig(
            spec=spec,
            params=ProtocolParams().at_rate(kw["rate"]),
            seed=seed,
        ))
        tc = session.bands.band_for(scenario.csc)
        tb = session.bands.band_for(scenario.csb)
        gap = max(tb.lo - tc.hi, tc.lo - tb.hi)
        accuracy = session.transmit(payload_bits(kw["bits"])).accuracy
        return {
            "scenario": scenario.name,
            "gap_cycles": float(gap),
            "accuracy": accuracy,
        }

    raise ValueError(f"unknown ablation group {group!r}")


# -- per-group helpers (stable programmatic API) ------------------------


def run_protocols(seed: int = 0, bits: int = 60) -> dict:
    """Channel accuracy per coherence-protocol variant."""
    return {
        protocol: point(group="protocol", seed=seed, protocol=protocol,
                        bits=bits)
        for protocol in PROTOCOLS
    }


def run_inclusion(seed: int = 0, bits: int = 60) -> dict:
    """Channel accuracy on inclusive vs non-inclusive LLCs."""
    return {
        ("inclusive" if inclusive else "non-inclusive"): point(
            group="inclusion", seed=seed, inclusive=inclusive, bits=bits
        )
        for inclusive in (True, False)
    }


def run_flush_methods(seed: int = 0, bits: int = 40) -> dict:
    """Channel accuracy/rate with clflush vs LLC-set eviction flushing.

    Section VI-B lists eviction of all the ways in the set as the
    clflush alternative; the ablation shows it works but is far slower.
    """
    return {
        method: point(group="flush", seed=seed, method=method, bits=bits)
        for method in FLUSH_METHODS
    }


def run_home_agent(seed: int = 0) -> dict:
    """Sub-band split under home-agent directories (Section VIII-E)."""
    return point(group="home_agent", seed=seed)


def run_band_gap(seed: int = 0, bits: int = 100, rate: float = 1000.0) -> dict:
    """High-rate accuracy vs the scenario's calibrated band gap."""
    rows = [
        point(group="band_gap", seed=seed, scenario=scenario.name,
              bits=bits, rate=rate)
        for scenario in TABLE_I
    ]
    return {"rows": rows, "rate": rate}


# -- unified spec API ---------------------------------------------------


def build_spec(
    seed: int = 0,
    bits: int = 60,
    flush_bits: int = 40,
    gap_bits: int = 100,
    gap_rate: float = 1000.0,
) -> ExperimentSpec:
    """Every ablation measurement as one flat grid."""
    points = []
    for protocol in PROTOCOLS:
        points.append(Point(POINT_FN, {
            "group": "protocol", "seed": seed, "protocol": protocol,
            "bits": bits,
        }, label=f"protocol:{protocol}"))
    for inclusive in (True, False):
        points.append(Point(POINT_FN, {
            "group": "inclusion", "seed": seed, "inclusive": inclusive,
            "bits": bits,
        }, label=f"inclusion:{inclusive}"))
    for method in FLUSH_METHODS:
        points.append(Point(POINT_FN, {
            "group": "flush", "seed": seed, "method": method,
            "bits": flush_bits,
        }, label=f"flush:{method}"))
    points.append(Point(POINT_FN, {
        "group": "home_agent", "seed": seed,
    }, label="home-agent"))
    for scenario in TABLE_I:
        points.append(Point(POINT_FN, {
            "group": "band_gap", "seed": seed, "scenario": scenario.name,
            "bits": gap_bits, "rate": gap_rate,
        }, label=f"gap:{scenario.name}"))
    return ExperimentSpec(
        experiment=NAME,
        points=tuple(points),
        meta={"gap_rate": gap_rate, "scenarios": [s.name for s in TABLE_I]},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    it = iter(values)
    protocols = {protocol: next(it) for protocol in PROTOCOLS}
    inclusion = {
        label: next(it) for label in ("inclusive", "non-inclusive")
    }
    flush = {method: next(it) for method in FLUSH_METHODS}
    home = next(it)
    rows = [next(it) for _ in spec.meta["scenarios"]]
    return {
        "protocols": protocols,
        "inclusion": inclusion,
        "flush_methods": flush,
        "home_agent": home,
        "band_gap": {"rows": rows, "rate": spec.meta["gap_rate"]},
    }


def run(spec: ExperimentSpec | None = None, **kwargs) -> dict:
    """All ablation groups in one result dict (keyed per group)."""
    if not isinstance(spec, ExperimentSpec):
        spec = build_spec(**kwargs)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    parts = [ascii_table(
        ("protocol", "accuracy"),
        [(k, f"{v * 100:.1f}%") for k, v in result["protocols"].items()],
        title="Ablation: coherence-protocol variant (paper Sec VIII-E)",
    ), ""]
    parts.append(ascii_table(
        ("LLC policy", "accuracy"),
        [(k, f"{v * 100:.1f}%") for k, v in result["inclusion"].items()],
        title="Ablation: LLC inclusion property",
    ))
    parts.append("")
    parts.append(ascii_table(
        ("flush primitive", "accuracy", "rate (Kbps)"),
        [(k, f"{v['accuracy'] * 100:.1f}%", f"{v['rate_kbps']:.0f}")
         for k, v in result["flush_methods"].items()],
        title="Ablation: clflush vs LLC-set eviction (paper Sec VI-B)",
    ))
    parts.append("")
    home = result["home_agent"]
    parts.append(ascii_table(
        ("remote-E address class", "latency (cycles)"),
        [("home-local", f"{home['home-local']:.0f}"),
         ("home-remote", f"{home['home-remote']:.0f}"),
         ("sub-band split", f"{home['split_cycles']:.0f}")],
        title="Ablation: home-agent directory hop (paper Sec VIII-E)",
    ))
    parts.append("")
    gap = result["band_gap"]
    parts.append(ascii_table(
        ("scenario", "band gap (cycles)", f"accuracy @ {gap['rate']:.0f}Kbps"),
        [
            (r["scenario"], f"{r['gap_cycles']:.0f}",
             f"{r['accuracy'] * 100:.0f}%")
            for r in sorted(gap["rows"], key=lambda r: r["gap_cycles"])
        ],
        title="Ablation: band gap vs high-rate robustness",
    ))
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

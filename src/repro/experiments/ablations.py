"""Ablations of the design choices DESIGN.md calls out.

* **Protocol variant** (MESI / MESIF / MOESI): the paper argues the F
  and O states do not change the E/S timing split the channel uses —
  verified by running the channel on all three.
* **Non-inclusive LLC** (Section VIII-E discussion): S-state blocks may
  be served cache-to-cache instead of from the LLC, but distinct latency
  profiles remain, so the channel survives inclusion-property changes.
* **Band-gap robustness**: per-scenario accuracy at a high rate should
  correlate with the latency gap between its two bands, the mechanism
  behind Figure 8's exceptions.
* **Home-agent directories** (Section VIII-E): the extra hop to an
  address's home directory splits every miss-service band into
  home-local/home-remote sub-bands — more latency profiles to exploit.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import CalibrationError
from repro.experiments.common import payload_bits
from repro.mem.hierarchy import MachineConfig


def run_protocols(seed: int = 0, bits: int = 60) -> dict:
    """Channel accuracy per coherence-protocol variant."""
    payload = payload_bits(bits)
    outcomes = {}
    for protocol in ("mesi", "mesif", "moesi"):
        session = ChannelSession(SessionConfig(
            scenario=TABLE_I[0],
            seed=seed,
            machine=MachineConfig(protocol=protocol),
        ))
        outcomes[protocol] = session.transmit(payload).accuracy
    return outcomes


def run_inclusion(seed: int = 0, bits: int = 60) -> dict:
    """Channel accuracy on inclusive vs non-inclusive LLCs."""
    payload = payload_bits(bits)
    outcomes = {}
    for inclusive in (True, False):
        label = "inclusive" if inclusive else "non-inclusive"
        try:
            session = ChannelSession(SessionConfig(
                scenario=TABLE_I[1],  # remote scenario: LLC role matters
                seed=seed,
                machine=MachineConfig(inclusive=inclusive),
            ))
            outcomes[label] = session.transmit(payload).accuracy
        except CalibrationError:
            outcomes[label] = 0.0
    return outcomes


def run_flush_methods(seed: int = 0, bits: int = 40) -> dict:
    """Channel accuracy/rate with clflush vs LLC-set eviction flushing.

    Section VI-B lists eviction of all the ways in the set as the
    clflush alternative; the ablation shows it works but is far slower.
    """
    payload = payload_bits(bits)
    outcomes = {}
    session = ChannelSession(SessionConfig(
        scenario=TABLE_I[0], seed=seed,
    ))
    result = session.transmit(payload)
    outcomes["clflush"] = {
        "accuracy": result.accuracy,
        "rate_kbps": result.achieved_rate_kbps,
    }
    session = ChannelSession(SessionConfig(
        scenario=TABLE_I[0], seed=seed,
        params=ProtocolParams.for_eviction_flush(),
        flush_method="evict",
    ))
    result = session.transmit(payload)
    outcomes["evict"] = {
        "accuracy": result.accuracy,
        "rate_kbps": result.achieved_rate_kbps,
    }
    return outcomes


def run_home_agent(seed: int = 0) -> dict:
    """Sub-band split under home-agent directories (Section VIII-E)."""
    from repro.mem.latency import NoiseModel
    from repro.mem.hierarchy import Machine
    from repro.sim.rng import RngStreams

    machine = Machine(
        MachineConfig(home_agent=True, noise=NoiseModel(enabled=False)),
        RngStreams(seed),
    )
    out = {}
    for addr, label in ((0x100000, "home-local"), (0x101000, "home-remote")):
        machine.flush(0, addr)
        machine.load(6, addr)           # remote E placement
        _v, latency, _p = machine.load(0, addr)
        out[label] = float(latency)
    out["split_cycles"] = out["home-remote"] - out["home-local"]
    return out


def run_band_gap(seed: int = 0, bits: int = 100, rate: float = 1000.0) -> dict:
    """High-rate accuracy vs the scenario's calibrated band gap."""
    payload = payload_bits(bits)
    params = ProtocolParams().at_rate(rate)
    rows = []
    for scenario in TABLE_I:
        session = ChannelSession(SessionConfig(
            scenario=scenario, params=params, seed=seed,
        ))
        tc = session.bands.band_for(scenario.csc)
        tb = session.bands.band_for(scenario.csb)
        gap = max(tb.lo - tc.hi, tc.lo - tb.hi)
        accuracy = session.transmit(payload).accuracy
        rows.append({
            "scenario": scenario.name,
            "gap_cycles": float(gap),
            "accuracy": accuracy,
        })
    return {"rows": rows, "rate": rate}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    protocols = run_protocols(seed=args.seed)
    print(ascii_table(
        ("protocol", "accuracy"),
        [(k, f"{v * 100:.1f}%") for k, v in protocols.items()],
        title="Ablation: coherence-protocol variant (paper Sec VIII-E)",
    ))
    print()
    inclusion = run_inclusion(seed=args.seed)
    print(ascii_table(
        ("LLC policy", "accuracy"),
        [(k, f"{v * 100:.1f}%") for k, v in inclusion.items()],
        title="Ablation: LLC inclusion property",
    ))
    print()
    flush = run_flush_methods(seed=args.seed)
    print(ascii_table(
        ("flush primitive", "accuracy", "rate (Kbps)"),
        [(k, f"{v['accuracy'] * 100:.1f}%", f"{v['rate_kbps']:.0f}")
         for k, v in flush.items()],
        title="Ablation: clflush vs LLC-set eviction (paper Sec VI-B)",
    ))
    print()
    home = run_home_agent(seed=args.seed)
    print(ascii_table(
        ("remote-E address class", "latency (cycles)"),
        [("home-local", f"{home['home-local']:.0f}"),
         ("home-remote", f"{home['home-remote']:.0f}"),
         ("sub-band split", f"{home['split_cycles']:.0f}")],
        title="Ablation: home-agent directory hop (paper Sec VIII-E)",
    ))
    print()
    gap = run_band_gap(seed=args.seed)
    print(ascii_table(
        ("scenario", "band gap (cycles)", f"accuracy @ {gap['rate']:.0f}Kbps"),
        [
            (r["scenario"], f"{r['gap_cycles']:.0f}",
             f"{r['accuracy'] * 100:.0f}%")
            for r in sorted(gap["rows"], key=lambda r: r["gap_cycles"])
        ],
        title="Ablation: band gap vs high-rate robustness",
    ))


if __name__ == "__main__":
    main()

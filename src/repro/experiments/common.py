"""Shared plumbing for the experiment drivers.

Every driver speaks the unified :class:`~repro.runner.ExperimentSpec`
API:

* ``point(**params)`` — the top-level per-grid-point function the
  runner executes (in-process or in a worker);
* ``build_spec(**kwargs) -> ExperimentSpec`` — declares the grid;
* ``collect(spec, values) -> dict`` — reassembles point values into the
  figure-shaped result dict;
* ``run(spec) -> dict`` — the normalized entry point (legacy keyword
  forms survive as deprecation shims);
* ``render(result) -> str`` — the paper-style text table;
* ``main(argv)`` — CLI glue with the shared ``--jobs``/``--no-cache``/
  ``--cache-dir`` runner options.
"""

from __future__ import annotations

import argparse
import warnings

import numpy as np

from repro.channel.config import TABLE_I, ProtocolParams, Scenario

#: Bit rates swept in Figure 8 (Kbits/s).
FIG8_RATES = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)

#: Co-located kernel-build thread counts of Figure 9.
FIG9_NOISE_LEVELS = (0, 1, 2, 4, 6, 8)

#: Noise levels of Figure 10 (none / medium / high).  The paper uses 4
#: and 8 kernel-build threads; our substrate's raw bit-error rate at
#: those levels is far above the regime where the paper's
#: detect-and-retransmit protocol operates (see EXPERIMENTS.md), so the
#: driver's medium/high points use 2 and 4 threads.
FIG10_NOISE = {"no-noise": 0, "medium": 2, "high": 4}


def payload_bits(n: int, seed: int = 2018) -> list[int]:
    """The pseudo-random bit pattern the trojan transmits (Figure 6).

    The paper transmits a fixed 100-bit secret; we generate it from a
    fixed seed so every experiment and test sees the same pattern.
    """
    rng = np.random.default_rng(seed)
    return [int(b) for b in rng.integers(0, 2, n)]


def default_params() -> ProtocolParams:
    """Protocol knobs used by the reception experiments."""
    return ProtocolParams()


def scenario_argument(parser: argparse.ArgumentParser) -> None:
    """Add the --scenario option accepting Table I notation."""
    parser.add_argument(
        "--scenario",
        choices=[s.name for s in TABLE_I] + ["all"],
        default="all",
        help="Table I scenario to run (default: all six)",
    )


def selected_scenarios(name: str) -> list[Scenario]:
    """Resolve a --scenario argument into scenario objects."""
    if name == "all":
        return list(TABLE_I)
    return [s for s in TABLE_I if s.name == name]


def protocol_argument(parser: argparse.ArgumentParser) -> None:
    """Add the uniform --protocol option (registered protocol names)."""
    from repro.mem.protocols import PROTOCOLS

    parser.add_argument(
        "--protocol",
        choices=sorted(PROTOCOLS),
        default=None,
        help="coherence protocol to run the machine under "
             "(default: the scenario's own, usually mesi)",
    )


def common_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every driver."""
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--bits", type=int, default=100,
        help="payload length in bits (default matches the paper's 100)",
    )
    protocol_argument(parser)


def runner_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared execution options every experiment command accepts."""
    group = parser.add_argument_group("runner")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the point grid (0 = all CPUs)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/results)",
    )
    group.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-point progress lines on stderr",
    )
    group.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="points per worker dispatch when --jobs > 1 (default: "
             "auto-sized from grid size and jobs, or $REPRO_CHUNK_SIZE; "
             "1 restores one-future-per-point dispatch)",
    )
    group.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="lane-batch width: group compatible cache-miss points into "
             "batches of N and run them on the vectorized lane backend "
             "(repro.sim.lanes; bit-identical to the reference engine; "
             "default: $REPRO_LANES, off when unset; 0 disables; sets "
             "REPRO_LANES so worker processes inherit it; cache keys "
             "are unaffected)",
    )
    group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts per failed point, with deterministic "
             "exponential backoff (default: fail fast)",
    )
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit (SIGALRM-enforced in the "
             "executing process)",
    )
    group.add_argument(
        "--keep-going", action="store_true",
        help="run the whole grid even if points fail; failures are "
             "reported at the end and the command exits 1",
    )
    group.add_argument(
        "--inject-faults", action="store_true",
        help="inject a deterministic harness fault plan (worker kills, "
             "transient errors, stalls) to exercise the failure policy",
    )
    group.add_argument(
        "--fault-rate", type=float, default=0.25, metavar="P",
        help="per-point fault probability for --inject-faults "
             "(default: 0.25)",
    )
    group.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed of the injected fault plan (default: 0)",
    )
    group.add_argument(
        "--trace", action="store_true",
        help="record structured trace events (repro.obs) in every "
             "session and the runner (sets REPRO_TRACE=1 so worker "
             "processes inherit it; cache keys are unaffected)",
    )
    group.add_argument(
        "--segment-cycles", type=float, default=None, metavar="CYCLES",
        help="segmented execution: checkpoint each transmission every "
             "CYCLES simulated cycles so killed/timed-out points resume "
             "from their last segment instead of recomputing (sets "
             "REPRO_SEGMENT_CYCLES so worker processes inherit it; "
             "cache keys are unaffected; REPRO_SEGMENTS=0 disables)",
    )


def execute_from_args(spec, args: argparse.Namespace) -> list:
    """Run *spec* under the CLI's runner options; returns point values.

    Builds a :class:`~repro.runner.Runner` from the options
    :func:`runner_arguments` added (``--jobs``, ``--no-cache``,
    ``--cache-dir``, ``--no-progress``, ``--chunk-size``, ``--lanes``,
    ``--retries``, ``--timeout``, ``--keep-going``, ``--inject-faults``),
    emits
    per-point progress and
    an end-of-sweep timing summary on stderr, and returns the values in
    grid order.  Under ``--keep-going`` with failures, the per-point
    errors are printed to stderr and the process exits 1 — completed
    values are already cached, so re-running resumes the sweep.
    """
    import os
    import sys

    from repro.runner import FailurePolicy, ResultCache, Runner, auto_progress

    if getattr(args, "trace", False):
        # Environment propagation (not a Point param) keeps grid cache
        # keys identical with and without tracing; pool workers inherit
        # the variable on fork/spawn.
        os.environ["REPRO_TRACE"] = "1"
        spec.meta.setdefault("trace", True)
    segment_cycles = getattr(args, "segment_cycles", None)
    if segment_cycles is not None:
        if segment_cycles <= 0:
            raise SystemExit("--segment-cycles must be a positive cycle count")
        # Same propagation rationale as --trace: segmentation changes
        # how a point executes, never what it computes, so it rides the
        # environment instead of the cache key.
        os.environ["REPRO_SEGMENT_CYCLES"] = repr(float(segment_cycles))
        spec.meta.setdefault("segment_cycles", float(segment_cycles))
    lanes = getattr(args, "lanes", None)
    if lanes is not None:
        if lanes < 0:
            raise SystemExit("--lanes must be >= 0")
        # Same propagation rationale as --trace: the lane backend changes
        # how a point executes, never what it computes (bit-identical by
        # construction), so it rides the environment instead of the
        # cache key and pool workers inherit it on fork/spawn.
        os.environ["REPRO_LANES"] = str(lanes)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        # Checkpoint segments build their own ResultCache inside worker
        # processes from $REPRO_CACHE_DIR; an explicit --cache-dir must
        # reach them too, not just the parent's results cache.
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    cache = None if getattr(args, "no_cache", False) else ResultCache(
        cache_dir
    )
    # auto_progress keeps the interactive renderer on a TTY and switches
    # to JSON-lines when stderr is piped (CI logs, the service's event
    # feed) — same hook, machine-readable output.
    progress = None if getattr(args, "no_progress", False) else auto_progress(
        spec.experiment
    )
    policy = FailurePolicy(
        retries=getattr(args, "retries", 0),
        timeout=getattr(args, "timeout", None),
        keep_going=getattr(args, "keep_going", False),
        seed=getattr(args, "seed", 0) or 0,
    )
    injector = None
    if getattr(args, "inject_faults", False):
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.build_harness(
            seed=getattr(args, "fault_seed", 0),
            n_points=len(spec.points),
            rate=getattr(args, "fault_rate", 0.25),
        )
        injector = FaultInjector(plan)
        print(
            f"{spec.experiment}: injecting {len(plan.harness_events)} "
            f"harness fault(s) (plan {plan.key()[:12]})",
            file=sys.stderr,
        )
    runner = Runner(jobs=getattr(args, "jobs", 1), cache=cache,
                    progress=progress, policy=policy, injector=injector,
                    chunk_size=getattr(args, "chunk_size", None),
                    lanes=lanes)
    report = runner.run(spec)
    if progress is not None:
        progress.summarize(report)
    if report.errors:
        for outcome in report.errors:
            print(
                f"{spec.experiment}: point {outcome.point.describe()} "
                f"FAILED after {outcome.attempts} attempt(s): "
                f"{outcome.error}",
                file=sys.stderr,
            )
        print(
            f"{spec.experiment}: {len(report.errors)} of "
            f"{len(spec.points)} point(s) failed; completed values are "
            f"cached — re-run the same command to resume",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return report.values


def warn_legacy_run(module: str) -> None:
    """Deprecation warning for the pre-ExperimentSpec ``run()`` forms."""
    warnings.warn(
        f"calling {module}.run() with legacy keyword arguments is "
        f"deprecated; build a grid with {module}.build_spec(...) and pass "
        f"the ExperimentSpec as the single positional argument",
        DeprecationWarning,
        stacklevel=3,
    )

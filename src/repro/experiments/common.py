"""Shared plumbing for the experiment drivers.

Every driver exposes ``run(...) -> dict`` returning plain data (so the
benchmark harness can assert on shapes) and a ``main()`` entry point
that prints the paper-style table/figure as text.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.channel.config import TABLE_I, ProtocolParams, Scenario

#: Bit rates swept in Figure 8 (Kbits/s).
FIG8_RATES = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)

#: Co-located kernel-build thread counts of Figure 9.
FIG9_NOISE_LEVELS = (0, 1, 2, 4, 6, 8)

#: Noise levels of Figure 10 (none / medium / high).  The paper uses 4
#: and 8 kernel-build threads; our substrate's raw bit-error rate at
#: those levels is far above the regime where the paper's
#: detect-and-retransmit protocol operates (see EXPERIMENTS.md), so the
#: driver's medium/high points use 2 and 4 threads.
FIG10_NOISE = {"no-noise": 0, "medium": 2, "high": 4}


def payload_bits(n: int, seed: int = 2018) -> list[int]:
    """The pseudo-random bit pattern the trojan transmits (Figure 6).

    The paper transmits a fixed 100-bit secret; we generate it from a
    fixed seed so every experiment and test sees the same pattern.
    """
    rng = np.random.default_rng(seed)
    return [int(b) for b in rng.integers(0, 2, n)]


def default_params() -> ProtocolParams:
    """Protocol knobs used by the reception experiments."""
    return ProtocolParams()


def scenario_argument(parser: argparse.ArgumentParser) -> None:
    """Add the --scenario option accepting Table I notation."""
    parser.add_argument(
        "--scenario",
        choices=[s.name for s in TABLE_I] + ["all"],
        default="all",
        help="Table I scenario to run (default: all six)",
    )


def selected_scenarios(name: str) -> list[Scenario]:
    """Resolve a --scenario argument into scenario objects."""
    if name == "all":
        return list(TABLE_I)
    return [s for s in TABLE_I if s.name == name]


def common_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every driver."""
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--bits", type=int, default=100,
        help="payload length in bits (default matches the paper's 100)",
    )

"""Repeatable performance harness for the simulator hot path.

``python -m repro bench`` drives the three canonical measurements and
emits a machine-readable ``BENCH_<date>.json`` report:

* ``engine_micro`` — a default-config covert-channel transmission timed
  around :meth:`ChannelSession.transmit` only, reported as engine
  events/second (the discrete-event core's throughput metric);
* ``fig8_point`` — one end-to-end Figure 8 bandwidth point (remote-E
  scenario, 100 bits at 500 Kbit/s), session construction and
  calibration included, reported as wall seconds;
* ``noise_point`` — one end-to-end point with two co-located noise
  workload threads, the contention-heavy configuration;
* ``grid_sweep`` — grid throughput (points/second) on a fig8-shaped
  64-point grid, comparing the pre-optimization reference path against
  warm-worker serial, per-point pool, chunked pool, and lane-backend
  dispatch, with a bit-identity check across all modes and the
  schema-v2 vs legacy cache entry sizes;
* ``lane_sweep`` — the lane backend (:mod:`repro.sim.lanes`) against
  the chunked pool on the same grid, serial and pool-composed, gated
  on bit-identity and a minimum speedup floor;
* ``service_sweep`` — two overlapping grids submitted concurrently to
  the experiment service (:mod:`repro.service`), gated on the
  fleet-wide dedupe ratio (each unique point executes exactly once)
  and on the served blobs decoding bit-identical to local runs;
* ``trace_overhead`` — the wall-time cost of structured tracing
  (:mod:`repro.obs`): disabled-mode overhead is gated (< 2%, since the
  disabled path is the unmodified hot code), enabled-mode cost is
  reported for information;
* ``streaming_overhead`` — the wall-time cost of live streaming
  detection (:mod:`repro.detection.streaming` subscribed to the trace
  feed): the unsubscribed path is gated (< 2%, same contract as
  disabled tracing), the live-monitoring and marginal sink costs are
  reported for information;
* ``segment_overhead`` — the wall-time cost of arming segmented
  checkpointing (:mod:`repro.checkpoint`) with a boundary the run never
  reaches, gated (< 5%) so the crash-resume machinery stays cheap
  enough to enable on any long run.

Every benchmark is deterministic (fixed seeds) so wall time is the only
thing that varies between runs; each is repeated and the best (minimum)
wall time is reported to suppress scheduler noise.  See PERFORMANCE.md
for how to run and read the reports, and how CI gates on them.
"""

from repro.bench.harness import (
    LANE_MIN_SPEEDUP,
    SEGMENT_OVERHEAD_LIMIT,
    SERVICE_MIN_DEDUPE,
    STREAMING_OVERHEAD_LIMIT,
    TRACE_OVERHEAD_LIMIT,
    check_regression,
    default_report_name,
    engine_micro,
    fig8_point,
    grid_sweep,
    lane_sweep,
    load_report,
    noise_point,
    run_all,
    segment_overhead,
    service_sweep,
    streaming_overhead,
    trace_overhead,
    write_report,
)

__all__ = [
    "LANE_MIN_SPEEDUP",
    "SEGMENT_OVERHEAD_LIMIT",
    "SERVICE_MIN_DEDUPE",
    "STREAMING_OVERHEAD_LIMIT",
    "TRACE_OVERHEAD_LIMIT",
    "check_regression",
    "default_report_name",
    "engine_micro",
    "fig8_point",
    "grid_sweep",
    "lane_sweep",
    "load_report",
    "noise_point",
    "run_all",
    "segment_overhead",
    "service_sweep",
    "streaming_overhead",
    "trace_overhead",
    "write_report",
]

"""The benchmark implementations behind ``python -m repro bench``.

Methodology
-----------
Each benchmark runs a fixed, deterministic workload (fixed seeds, fixed
payloads) so that the executed event sequence is identical from run to
run and between code versions — wall clock is the only free variable.
Benchmarks are repeated ``repeats`` times and the minimum wall time is
kept: the minimum is the run least disturbed by the host (GC pauses,
scheduler preemption), which is the quantity a code change actually
moves.

``engine_micro`` times only the transmission (session construction and
calibration excluded) and divides the engine's executed-event count by
the wall time; ``fig8_point`` and ``noise_point`` time a whole
experiment point end to end, construction included, because that is the
latency a grid sweep pays per point.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

import repro

#: Deterministic payload pattern shared by every benchmark.
_PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]

#: Report schema version (bump when the JSON layout changes).
#: v2 added the ``grid_sweep`` benchmark (points/s per execution mode,
#: bit-identity flag, transport byte counts).
#: v3 added ``trace_overhead`` (disabled/enabled tracing cost).
#: v4 added ``segment_overhead`` (armed-but-idle segmentation cost).
#: v5 added ``lane_sweep`` (lane backend vs chunked pool throughput)
#: and the ``lanes`` mode inside ``grid_sweep``.
#: v6 added ``service_sweep`` (two overlapping grids through the
#: experiment service vs back-to-back local runs; dedupe ratio gated).
#: v7 added ``streaming_overhead`` (live streaming detection subscribed
#: to the trace feed vs traced-only and untraced runs; the path with
#: the feature absent is gated like disabled tracing).
SCHEMA = 7

#: Minimum lane-backend speedup over the chunked pool mode on the
#: ``lane_sweep`` grid.  An absolute floor, not baseline-relative: if
#: the lane backend ever fails to beat the mode it exists to replace
#: by at least this margin, it has regressed into dead weight.  Set
#: from measurement: serial lanes sustain ~2x chunked on a single-CPU
#: host (where the pool is pure overhead) and lanes+pool compose on
#: multicore hosts, so 1.2x holds comfortably on both.
LANE_MIN_SPEEDUP = 1.2

#: Minimum fleet-wide dedupe ratio (points submitted / points actually
#: executed) on the ``service_sweep`` workload.  The two grids overlap
#: by construction, and single-flight guarantees each unique key runs
#: exactly once, so the ratio is deterministic (1.88x on the full grid,
#: 2.0x on the fully-overlapping quick grid); 1.8x holds for both and
#: fails loudly if the service ever starts re-executing shared points.
SERVICE_MIN_DEDUPE = 1.8

#: Allowed wall-time overhead of *disabled* tracing vs the baseline.
#: Disabled tracing attaches nothing to the machine — the hot path is
#: byte-for-byte the untraced code — so this is an A/B of identical
#: work and the gate bounds measurement noise plus any accidental
#: reintroduction of per-event checks.
TRACE_OVERHEAD_LIMIT = 0.02

#: Allowed wall-time overhead of the *disabled* streaming-detection
#: path vs the baseline.  With no sink subscribed the recorder's
#: notify loop is skipped behind one truthiness check, and with tracing
#: off the recorder does not exist at all — so, like disabled tracing,
#: this is an A/B of identical work and the gate bounds noise plus any
#: accidental per-event cost added to the unsubscribed path.
STREAMING_OVERHEAD_LIMIT = 0.02

#: Allowed wall-time overhead of segmentation armed with a boundary the
#: run never reaches.  This isolates the per-event bookkeeping the
#: checkpoint plane adds (replay-log appends, mark truncation, the
#: pause-boundary comparison) from the cost of actually storing
#: segments, which is proportional to segment count and priced in
#: EXPERIMENTS.md instead.
SEGMENT_OVERHEAD_LIMIT = 0.05


def _payload(bits: int) -> list[int]:
    reps = (bits + len(_PAYLOAD) - 1) // len(_PAYLOAD)
    return (_PAYLOAD * reps)[:bits]


def engine_micro(
    seed: int = 0, bits: int = 48, repeats: int = 3
) -> dict[str, Any]:
    """Engine throughput: events/second over a default-config session.

    A fresh session is built per repeat (so cache/coherence state never
    leaks between repeats) and only :meth:`transmit` is timed.
    """
    from repro.channel.session import ChannelSession, SessionConfig

    payload = _payload(bits)
    best_wall = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        session = ChannelSession(SessionConfig(
            spec="LExclc-LSharedb",
            seed=seed,
            calibration_samples=200,
        ))
        counter = session.machine.stats.counter_handle("engine.events")
        start_events = counter.value
        t0 = time.perf_counter()
        session.transmit(payload)
        wall = time.perf_counter() - t0
        events = counter.value - start_events
        if wall < best_wall:
            best_wall = wall
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall,
    }


def fig8_point(repeats: int = 3, bits: int = 100) -> dict[str, Any]:
    """One end-to-end Figure 8 bandwidth point (remote-E, 500 Kbit/s)."""
    from repro.channel.session import execute_point

    payload = _payload(bits)
    best_wall = float("inf")
    accuracy = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = execute_point(
            scenario="RExclc-LSharedb", payload=payload,
            rate_kbps=500.0, seed=0,
        )
        wall = time.perf_counter() - t0
        accuracy = result.accuracy
        if wall < best_wall:
            best_wall = wall
    return {"wall_s": best_wall, "accuracy": accuracy}


def noise_point(repeats: int = 3, bits: int = 24) -> dict[str, Any]:
    """One end-to-end point with two co-located noise workloads."""
    from repro.channel.session import execute_point

    payload = _payload(bits)
    best_wall = float("inf")
    accuracy = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = execute_point(
            scenario="LExclc-LSharedb", payload=payload,
            seed=0, noise_threads=2,
        )
        wall = time.perf_counter() - t0
        accuracy = result.accuracy
        if wall < best_wall:
            best_wall = wall
    return {"wall_s": best_wall, "accuracy": accuracy}


def trace_overhead(
    seed: int = 0, bits: int = 24, repeats: int = 3
) -> dict[str, Any]:
    """Tracing cost: disabled-mode (gated) and enabled-mode (reported).

    Three session variants transmit the same fixed payload:

    * ``baseline`` — ``trace=False``, tracing forced off;
    * ``disabled`` — ``trace=None`` with ``REPRO_TRACE`` unset, the
      default production path (must resolve to the same untraced code);
    * ``enabled`` — ``trace=True``, full recording.

    Variants are interleaved within each repeat so host drift hits all
    three equally, and the best wall per variant is kept.  The report
    carries ``disabled_overhead`` (gated at
    :data:`TRACE_OVERHEAD_LIMIT` by :func:`check_regression`) and
    ``enabled_overhead`` (informational — the price of turning the
    feature on).
    """
    import os

    from repro.channel.session import ChannelSession, SessionConfig

    payload = _payload(bits)

    def one(trace: bool | None) -> tuple[float, int]:
        session = ChannelSession(SessionConfig(
            spec="LExclc-LSharedb",
            seed=seed,
            calibration_samples=200,
            trace=trace,
        ))
        t0 = time.perf_counter()
        session.transmit(payload)
        wall = time.perf_counter() - t0
        emitted = session.recorder.emitted if session.recorder else 0
        return wall, emitted

    # The "disabled" variant must see the real default, even when the
    # harness itself runs under a REPRO_TRACE=1 CI leg.
    saved = os.environ.pop("REPRO_TRACE", None)
    best = {"baseline": float("inf"), "disabled": float("inf"),
            "enabled": float("inf")}
    traced_events = 0
    try:
        for _ in range(max(1, repeats)):
            for name, flag in (("baseline", False), ("disabled", None),
                               ("enabled", True)):
                wall, emitted = one(flag)
                best[name] = min(best[name], wall)
                if name == "enabled":
                    traced_events = emitted
    finally:
        if saved is not None:
            os.environ["REPRO_TRACE"] = saved
    return {
        "bits": bits,
        "baseline_wall_s": best["baseline"],
        "disabled_wall_s": best["disabled"],
        "enabled_wall_s": best["enabled"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
        "traced_events": traced_events,
    }


def streaming_overhead(
    seed: int = 0, bits: int = 24, repeats: int = 3
) -> dict[str, Any]:
    """Streaming-detection cost: disabled (gated) and live (reported).

    Four session variants transmit the same fixed payload:

    * ``baseline`` — ``trace=False``: no recorder, no sink, the
      untraced hot path;
    * ``disabled`` — ``trace=None`` with ``REPRO_TRACE`` unset, the
      default production path with the streaming machinery present but
      dormant (must resolve to the same untraced code);
    * ``traced`` — ``trace=True`` with no subscriber: recorder cost
      alone;
    * ``streaming`` — ``trace=True`` with a
      :class:`~repro.detection.streaming.StreamingDetector` subscribed
      to the session recorder, interim scans included — the live
      monitoring configuration the arena driver runs.

    Variants are interleaved within each repeat so host drift hits all
    four equally; the best wall per variant is kept.  The report
    carries ``disabled_overhead`` (gated at
    :data:`STREAMING_OVERHEAD_LIMIT` by :func:`check_regression`),
    ``streaming_overhead`` (live monitoring vs baseline) and
    ``sink_overhead`` (the detector's marginal cost over tracing
    alone), both informational.
    """
    import os

    from repro.channel.session import ChannelSession, SessionConfig
    from repro.detection.streaming import StreamingDetector

    payload = _payload(bits)

    def one(trace: bool | None, subscribe: bool) -> tuple[float, int, bool]:
        session = ChannelSession(SessionConfig(
            spec="LExclc-LSharedb",
            seed=seed,
            calibration_samples=200,
            trace=trace,
        ))
        detector = None
        if subscribe:
            detector = StreamingDetector(scan_interval=100_000.0)
            session.recorder.subscribe(detector)
        t0 = time.perf_counter()
        session.transmit(payload)
        wall = time.perf_counter() - t0
        events = detector.events if detector else 0
        flagged = bool(detector and detector.scan())
        return wall, events, flagged

    saved = os.environ.pop("REPRO_TRACE", None)
    best = {"baseline": float("inf"), "disabled": float("inf"),
            "traced": float("inf"), "streaming": float("inf")}
    events = 0
    flagged = False
    try:
        for _ in range(max(1, repeats)):
            for name, trace, subscribe in (
                ("baseline", False, False),
                ("disabled", None, False),
                ("traced", True, False),
                ("streaming", True, True),
            ):
                wall, n, hit = one(trace, subscribe)
                best[name] = min(best[name], wall)
                if name == "streaming":
                    events, flagged = n, hit
    finally:
        if saved is not None:
            os.environ["REPRO_TRACE"] = saved
    return {
        "bits": bits,
        "baseline_wall_s": best["baseline"],
        "disabled_wall_s": best["disabled"],
        "traced_wall_s": best["traced"],
        "streaming_wall_s": best["streaming"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "streaming_overhead": best["streaming"] / best["baseline"] - 1.0,
        "sink_overhead": best["streaming"] / best["traced"] - 1.0,
        "streamed_events": events,
        "flagged": flagged,
    }


def segment_overhead(
    seed: int = 0, bits: int = 24, repeats: int = 3
) -> dict[str, Any]:
    """Cost of segmentation that is armed but never fires.

    Two session variants transmit the same fixed payload:

    * ``baseline`` — segmentation off (today's default path);
    * ``armed`` — ``REPRO_SEGMENT_CYCLES`` set to a boundary far beyond
      the run's end and a :class:`~repro.checkpoint.SegmentStore`
      attached, so every per-event checkpoint cost is paid (replay logs
      on all spec-bearing threads, cursor marks, the pause check) but no
      segment is ever captured or stored.

    ``overhead`` is gated at :data:`SEGMENT_OVERHEAD_LIMIT` by
    :func:`check_regression`: an unsegmented point must stay within 5%
    of itself with the machinery armed, or segmentation is too expensive
    to leave available by default.
    """
    import os
    import tempfile

    from repro.channel.session import ChannelSession, SessionConfig

    payload = _payload(bits)
    scratch = tempfile.mkdtemp(prefix="repro-bench-seg-")

    def one(armed: bool) -> float:
        saved = os.environ.pop("REPRO_SEGMENT_CYCLES", None)
        if armed:
            os.environ["REPRO_SEGMENT_CYCLES"] = "1e15"
        try:
            session = ChannelSession(SessionConfig(
                spec="LExclc-LSharedb",
                seed=seed,
                calibration_samples=200,
            ))
            if armed:
                from repro.checkpoint.segments import SegmentStore
                from repro.runner.cache import ResultCache

                session.segments = SegmentStore(
                    "bench-segment-overhead",
                    cache=ResultCache(scratch),
                    cycles=1e15,
                )
            t0 = time.perf_counter()
            session.transmit(payload)
            return time.perf_counter() - t0
        finally:
            if saved is None:
                os.environ.pop("REPRO_SEGMENT_CYCLES", None)
            else:
                os.environ["REPRO_SEGMENT_CYCLES"] = saved

    best = {"baseline": float("inf"), "armed": float("inf")}
    for _ in range(max(1, repeats)):
        # Interleaved so host drift hits both variants equally.
        best["baseline"] = min(best["baseline"], one(False))
        best["armed"] = min(best["armed"], one(True))
    return {
        "bits": bits,
        "baseline_wall_s": best["baseline"],
        "armed_wall_s": best["armed"],
        "overhead": best["armed"] / best["baseline"] - 1.0,
    }


def grid_point(
    *, scenario: str, rate: float, seed: int, bits: int
) -> Any:
    """One full-result grid point for the ``grid_sweep`` benchmark.

    Returns the whole :class:`TransmissionResult` (not just accuracy) so
    the benchmark exercises the compact sample transport on IPC and
    cache paths, and so bit-identity across execution modes can be
    checked over the complete latency trace.
    """
    from repro.channel.session import execute_point

    return execute_point(
        scenario=scenario, payload=_payload(bits), rate_kbps=rate, seed=seed
    )


def _grid_spec(points: int, bits: int, rate_offset: float = 0.0):
    """A fig8-shaped scenario × rate grid of *points* full-result points.

    *rate_offset* shifts every rate by a constant, producing a second
    grid that overlaps the first on all but the shifted-out rates — the
    ``service_sweep`` benchmark's workload shape.
    """
    from repro.runner import ExperimentSpec, Point

    scenarios = ("LExclc-LSharedb", "RExclc-LSharedb")
    per = max(1, points // len(scenarios))
    rates = [100.0 + rate_offset + 25.0 * i for i in range(per)]
    grid = tuple(
        Point(
            fn="repro.bench.harness:grid_point",
            params={"scenario": name, "rate": rate, "seed": 0, "bits": bits},
            label=f"{name}@{rate:g}K",
        )
        for name in scenarios
        for rate in rates
    )
    return ExperimentSpec(experiment="bench-grid", points=grid)


def _values_digest(values: list[Any]) -> str:
    """SHA-256 over everything observable in a grid's results."""
    import hashlib
    import pickle

    digest = hashlib.sha256()
    for value in values:
        digest.update(pickle.dumps((
            value.sent,
            value.received,
            [(s.timestamp, s.latency, s.label, str(s.path))
             for s in value.samples],
            value.cycles,
        )))
    return digest.hexdigest()


def _run_grid_mode(
    spec: Any, runner_kwargs: dict, env: dict[str, str] | None = None
) -> tuple[list[Any], float]:
    """Run *spec* once under *runner_kwargs* with *env* overrides.

    Clears the warm machine/calibration state first so every mode pays
    its own first-calibration cost, and restores the environment
    afterwards.  Returns ``(values, wall_seconds)``.
    """
    import os

    from repro.channel.session import clear_warm_state
    from repro.runner import Runner

    saved: dict[str, str | None] = {}
    for key, value in (env or {}).items():
        saved[key] = os.environ.get(key)
        os.environ[key] = value
    clear_warm_state()
    try:
        t0 = time.perf_counter()
        values = Runner(cache=None, **runner_kwargs).run(spec).values
        return values, time.perf_counter() - t0
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def grid_sweep(
    jobs: int = 4, points: int = 64, bits: int = 24, lanes: int = 8
) -> dict[str, Any]:
    """Grid throughput (points/second) across the execution modes.

    Runs the same fig8-shaped grid five ways and reports each mode's
    points/s plus its speedup over ``reference``:

    * ``reference`` — serial with the calibration memo and warm machine
      pool disabled: the pre-optimization (PR 3) execution path;
    * ``jobs`` — the process pool with one future per point
      (``chunk_size=1``), warm workers + memo active;
    * ``chunked`` — the pool with auto-sized seed-grouped chunks, the
      full optimized configuration;
    * ``serial`` — in-process with memo + warm pool active;
    * ``lanes`` — in-process with the lane backend driving every
      eligible point (PR 8; see ``lane_sweep`` for the dedicated
      lane-vs-chunked comparison).

    The warm state is cleared before every mode, so each pays its own
    first-calibration cost.  ``bit_identical`` asserts that all five
    modes produced byte-equal results (sent/received bits, the full
    latency trace, cycle counts) — speed with different answers is a
    regression, and the gate treats it as one.  Speedups are
    self-relative (same host, same process), so they are comparable
    across machines in a way raw walls are not.

    Also reports the on-disk transport cost of the grid's results:
    ``cache_bytes`` under the schema-v2 entry encoding versus
    ``cache_bytes_legacy`` under the v1 bare-pickle-with-object-samples
    encoding it replaced.
    """
    import pickle

    from repro.runner.cache import encode_entry

    spec = _grid_spec(points, bits)

    optimizations_off = {
        "REPRO_WARM_WORKERS": "0",
        "REPRO_CALIBRATION_MEMO": "0",
    }
    ref_values, ref_wall = _run_grid_mode(spec, {"jobs": 1},
                                          optimizations_off)
    jobs_values, jobs_wall = _run_grid_mode(spec,
                                            {"jobs": jobs, "chunk_size": 1})
    chunk_values, chunk_wall = _run_grid_mode(spec, {"jobs": jobs})
    serial_values, serial_wall = _run_grid_mode(spec, {"jobs": 1})
    lane_values, lane_wall = _run_grid_mode(spec,
                                            {"jobs": 1, "lanes": lanes})

    reference = _values_digest(ref_values)
    bit_identical = all(
        _values_digest(values) == reference
        for values in (jobs_values, chunk_values, serial_values,
                       lane_values)
    )

    n = len(spec.points)
    modes: dict[str, dict[str, float]] = {}
    for name, wall in (
        ("reference", ref_wall),
        ("serial", serial_wall),
        ("jobs", jobs_wall),
        ("chunked", chunk_wall),
        ("lanes", lane_wall),
    ):
        entry = {"wall_s": wall, "points_per_sec": n / wall}
        if name != "reference":
            entry["speedup"] = ref_wall / wall
        modes[name] = entry

    cache_bytes = sum(len(encode_entry(v)) for v in ref_values)
    # The v1 encoding: a bare pickle whose samples are full objects.
    legacy_bytes = sum(
        len(pickle.dumps(
            dict(v.__dict__), protocol=pickle.HIGHEST_PROTOCOL
        ))
        for v in ref_values
    )
    return {
        "points": n,
        "bits": bits,
        "jobs": jobs,
        "bit_identical": bit_identical,
        "modes": modes,
        "best_speedup": max(
            info["speedup"] for name, info in modes.items()
            if name != "reference"
        ),
        "cache_bytes": cache_bytes,
        "cache_bytes_legacy": legacy_bytes,
        "cache_reduction": 1.0 - cache_bytes / legacy_bytes,
    }


def lane_sweep(
    jobs: int = 4, points: int = 64, bits: int = 24, width: int = 8
) -> dict[str, Any]:
    """Lane-backend throughput vs the chunked pool on the fig8 grid.

    The dedicated PR 8 benchmark: the same fig8-shaped grid that
    ``grid_sweep`` uses, run three ways —

    * ``chunked`` — the PR 4 configuration this backend is measured
      against: the process pool with auto-sized seed-grouped chunks;
    * ``lanes`` — in-process serial with lane batches of *width*
      compatible points;
    * ``lanes_pool`` — lane batches dispatched across the process
      pool (the composition multicore hosts run).

    ``bit_identical`` asserts all three modes produce byte-equal
    results over the complete latency traces.  ``speedup_vs_chunked``
    is the best lane mode's points/s over chunked's, self-relative on
    the same host so the number is portable; :func:`check_regression`
    gates it against :data:`LANE_MIN_SPEEDUP` and against the pinned
    baseline.
    """
    spec = _grid_spec(points, bits)

    chunk_values, chunk_wall = _run_grid_mode(spec, {"jobs": jobs})
    lane_values, lane_wall = _run_grid_mode(spec,
                                            {"jobs": 1, "lanes": width})
    pool_values, pool_wall = _run_grid_mode(spec,
                                            {"jobs": jobs, "lanes": width})

    reference = _values_digest(chunk_values)
    bit_identical = all(
        _values_digest(values) == reference
        for values in (lane_values, pool_values)
    )

    n = len(spec.points)
    modes: dict[str, dict[str, float]] = {}
    for name, wall in (
        ("chunked", chunk_wall),
        ("lanes", lane_wall),
        ("lanes_pool", pool_wall),
    ):
        entry = {"wall_s": wall, "points_per_sec": n / wall}
        if name != "chunked":
            entry["speedup_vs_chunked"] = chunk_wall / wall
        modes[name] = entry
    return {
        "points": n,
        "bits": bits,
        "jobs": jobs,
        "width": width,
        "bit_identical": bit_identical,
        "modes": modes,
        "speedup_vs_chunked": max(
            info["speedup_vs_chunked"] for name, info in modes.items()
            if name != "chunked"
        ),
    }


def service_sweep(
    jobs: int = 4, points: int = 64, bits: int = 24
) -> dict[str, Any]:
    """Fleet-wide dedupe: two overlapping grids through the service.

    The PR 9 benchmark.  Two fig8-shaped grids of *points* points each,
    the second with its rates shifted so most of its keys coincide with
    the first's (on the full 64-point grid: 128 points submitted, 68
    unique; the quick grid fully overlaps), run two ways:

    * ``local`` — back-to-back uncached :class:`~repro.runner.Runner`
      sweeps, paying for every submitted point: the pre-service cost of
      two teammates sweeping overlapping grids;
    * ``service`` — both grids submitted concurrently to one
      :class:`~repro.service.ExperimentService` over HTTP, sharing the
      sharded single-flight index and one warm worker pool.

    ``dedupe_ratio`` (submitted / executed) is deterministic — the
    single-flight index executes each unique key exactly once whatever
    the scheduler interleaving — and :func:`check_regression` gates it
    against :data:`SERVICE_MIN_DEDUPE`.  ``bit_identical`` asserts the
    blobs served over HTTP decode byte-equal to the local runs' values.
    ``speedup_vs_local`` is reported as context but does not gate (it
    mixes pool warm-up and HTTP overhead into a host-sensitive number).
    """
    import tempfile

    from repro.runner.cache import ResultCache
    from repro.runner.executor import FailurePolicy
    from repro.service import ExperimentService, ServiceClient

    per = max(1, points // 2)
    # Shift ~1/16th of the rate axis: 2 rates on the full grid (68
    # unique of 128), 0 on the quick grid (full overlap).
    offset = 25.0 * (per // 16)
    spec_a = _grid_spec(points, bits)
    spec_b = _grid_spec(points, bits, rate_offset=offset)
    submitted = len(spec_a.points) + len(spec_b.points)
    unique = len({
        point.key("bench-svc")
        for point in spec_a.points + spec_b.points
    })

    local_a, wall_a = _run_grid_mode(spec_a, {"jobs": jobs})
    local_b, wall_b = _run_grid_mode(spec_b, {"jobs": jobs})
    local_wall = wall_a + wall_b

    scratch = tempfile.mkdtemp(prefix="repro-bench-svc-")
    service = ExperimentService(
        cache=ResultCache(scratch, salt="bench-svc"),
        workers=jobs,
        policy=FailurePolicy(keep_going=True),
    )
    handle = service.run_in_thread()
    try:
        client = ServiceClient(handle.base_url)
        t0 = time.perf_counter()
        job_a = client.submit_spec(spec_a)
        job_b = client.submit_spec(spec_b)
        manifest_a = client.wait(job_a, timeout=3600)
        manifest_b = client.wait(job_b, timeout=3600)
        service_wall = time.perf_counter() - t0
        served_a = client.values(job_a)
        served_b = client.values(job_b)
        stats = handle.stats()
    finally:
        handle.stop()

    executed = manifest_a["executed"] + manifest_b["executed"]
    bit_identical = (
        _values_digest(served_a) == _values_digest(local_a)
        and _values_digest(served_b) == _values_digest(local_b)
    )
    return {
        "points": points,
        "bits": bits,
        "jobs": jobs,
        "submitted": submitted,
        "unique": unique,
        "executed": executed,
        "coalesced": stats["coalesced"],
        "dedupe_ratio": submitted / max(1, executed),
        "bit_identical": bit_identical,
        "local_wall_s": local_wall,
        "service_wall_s": service_wall,
        "speedup_vs_local": local_wall / service_wall,
    }


def run_all(repeats: int = 3, quick: bool = False) -> dict[str, Any]:
    """Run every benchmark and return the full report dict."""
    if quick:
        micro_bits, fig8_bits, noise_bits = 16, 24, 8
        grid_points, grid_bits = 16, 8
    else:
        micro_bits, fig8_bits, noise_bits = 48, 100, 24
        grid_points, grid_bits = 64, 24
    return {
        "schema": SCHEMA,
        "date": time.strftime("%Y-%m-%d"),
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "repeats": repeats,
        "quick": quick,
        "benchmarks": {
            "engine_micro": engine_micro(bits=micro_bits, repeats=repeats),
            "fig8_point": fig8_point(repeats=repeats, bits=fig8_bits),
            "noise_point": noise_point(repeats=repeats, bits=noise_bits),
            "grid_sweep": grid_sweep(points=grid_points, bits=grid_bits),
            "lane_sweep": lane_sweep(points=grid_points, bits=grid_bits),
            "service_sweep": service_sweep(
                points=grid_points, bits=grid_bits
            ),
            "trace_overhead": trace_overhead(
                bits=noise_bits, repeats=repeats
            ),
            "streaming_overhead": streaming_overhead(
                bits=noise_bits, repeats=repeats
            ),
            "segment_overhead": segment_overhead(
                bits=noise_bits, repeats=repeats
            ),
        },
    }


def default_report_name(date: str | None = None) -> str:
    """The canonical report filename, ``BENCH_<YYYY-MM-DD>.json``."""
    return f"BENCH_{date or time.strftime('%Y-%m-%d')}.json"


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Write *report* as indented JSON; returns the path written."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a report previously written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.20,
) -> list[str]:
    """Compare two reports; return a list of human-readable failures.

    Four quantities gate:

    * engine events/second — the current run must reach at least
      ``(1 - max_regression)`` of the baseline's throughput;
    * disabled-mode tracing — ``trace_overhead.disabled_overhead`` must
      stay under :data:`TRACE_OVERHEAD_LIMIT` (an absolute bound, not
      baseline-relative: disabled tracing is contractually free);
    * unsubscribed streaming detection —
      ``streaming_overhead.disabled_overhead`` must stay under
      :data:`STREAMING_OVERHEAD_LIMIT` (same contract: with no sink
      subscribed the feed hook must be free);
    * armed-but-idle segmentation — ``segment_overhead.overhead`` must
      stay under :data:`SEGMENT_OVERHEAD_LIMIT` (also absolute: the
      checkpoint plane's per-event bookkeeping must stay cheap enough
      to arm on any long run);
    * grid throughput — ``grid_sweep`` must report ``bit_identical``
      (an optimized mode producing different results is a correctness
      regression, whatever its speed), and when the baseline also
      carries a ``grid_sweep``, the current best self-relative speedup
      must stay within ``max_regression`` of the baseline's.  Speedups
      rather than raw walls gate because they are host-portable;
    * lane backend — ``lane_sweep`` must report ``bit_identical``
      (the lane backend's whole contract is byte-equal results), its
      ``speedup_vs_chunked`` must reach the absolute
      :data:`LANE_MIN_SPEEDUP` floor, and when the baseline carries a
      ``lane_sweep`` the speedup must also stay within
      ``max_regression`` of the baseline's;
    * experiment service — ``service_sweep`` must report
      ``bit_identical`` (blobs served over HTTP must decode to exactly
      the local values) and a ``dedupe_ratio`` of at least
      :data:`SERVICE_MIN_DEDUPE` (both absolute: the ratio is
      deterministic, so any shortfall means shared points re-executed).

    Wall times of the end-to-end points are reported as context but do
    not gate (they include calibration and are noisier on shared
    runners).
    """
    problems: list[str] = []
    try:
        base_eps = baseline["benchmarks"]["engine_micro"]["events_per_sec"]
        cur_eps = current["benchmarks"]["engine_micro"]["events_per_sec"]
    except KeyError as exc:
        return [f"malformed report: missing {exc}"]
    floor = base_eps * (1.0 - max_regression)
    if cur_eps < floor:
        problems.append(
            f"engine_micro regressed: {cur_eps:,.0f} events/s < "
            f"{floor:,.0f} (baseline {base_eps:,.0f} - {max_regression:.0%})"
        )
    trace = current["benchmarks"].get("trace_overhead")
    if trace is not None:
        overhead = trace.get("disabled_overhead", 0.0)
        if overhead >= TRACE_OVERHEAD_LIMIT:
            problems.append(
                f"trace_overhead: disabled-mode tracing costs "
                f"{overhead:.1%} >= {TRACE_OVERHEAD_LIMIT:.0%} "
                f"(must be free when off)"
            )
    streaming = current["benchmarks"].get("streaming_overhead")
    if streaming is not None:
        overhead = streaming.get("disabled_overhead", 0.0)
        if overhead >= STREAMING_OVERHEAD_LIMIT:
            problems.append(
                f"streaming_overhead: unsubscribed streaming path costs "
                f"{overhead:.1%} >= {STREAMING_OVERHEAD_LIMIT:.0%} "
                f"(must be free when no detector is attached)"
            )
    segment = current["benchmarks"].get("segment_overhead")
    if segment is not None:
        overhead = segment.get("overhead", 0.0)
        if overhead >= SEGMENT_OVERHEAD_LIMIT:
            problems.append(
                f"segment_overhead: armed-but-idle segmentation costs "
                f"{overhead:.1%} >= {SEGMENT_OVERHEAD_LIMIT:.0%} on an "
                f"unsegmented point"
            )
    grid = current["benchmarks"].get("grid_sweep")
    if grid is not None:
        if not grid.get("bit_identical", False):
            problems.append(
                "grid_sweep: optimized modes are not bit-identical to "
                "the reference path"
            )
        base_grid = baseline["benchmarks"].get("grid_sweep")
        if base_grid is not None:
            base_speedup = base_grid.get("best_speedup", 0.0)
            speedup_floor = base_speedup * (1.0 - max_regression)
            if grid.get("best_speedup", 0.0) < speedup_floor:
                problems.append(
                    f"grid_sweep regressed: best speedup "
                    f"{grid.get('best_speedup', 0.0):.2f}x < "
                    f"{speedup_floor:.2f}x (baseline {base_speedup:.2f}x "
                    f"- {max_regression:.0%})"
                )
    lane = current["benchmarks"].get("lane_sweep")
    if lane is not None:
        if not lane.get("bit_identical", False):
            problems.append(
                "lane_sweep: lane modes are not bit-identical to the "
                "chunked reference results"
            )
        lane_speedup = lane.get("speedup_vs_chunked", 0.0)
        if lane_speedup < LANE_MIN_SPEEDUP:
            problems.append(
                f"lane_sweep: lane backend only reaches "
                f"{lane_speedup:.2f}x vs chunked < the "
                f"{LANE_MIN_SPEEDUP:.2f}x floor"
            )
        base_lane = baseline["benchmarks"].get("lane_sweep")
        if base_lane is not None:
            base_speedup = base_lane.get("speedup_vs_chunked", 0.0)
            lane_floor = base_speedup * (1.0 - max_regression)
            if lane_speedup < lane_floor:
                problems.append(
                    f"lane_sweep regressed: {lane_speedup:.2f}x vs "
                    f"chunked < {lane_floor:.2f}x (baseline "
                    f"{base_speedup:.2f}x - {max_regression:.0%})"
                )
    service = current["benchmarks"].get("service_sweep")
    if service is not None:
        if not service.get("bit_identical", False):
            problems.append(
                "service_sweep: blobs served by the experiment service "
                "are not bit-identical to local runner values"
            )
        ratio = service.get("dedupe_ratio", 0.0)
        if ratio < SERVICE_MIN_DEDUPE:
            problems.append(
                f"service_sweep: dedupe ratio {ratio:.2f}x < the "
                f"{SERVICE_MIN_DEDUPE:.2f}x floor (overlapping points "
                f"are being re-executed)"
            )
    return problems

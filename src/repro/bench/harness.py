"""The benchmark implementations behind ``python -m repro bench``.

Methodology
-----------
Each benchmark runs a fixed, deterministic workload (fixed seeds, fixed
payloads) so that the executed event sequence is identical from run to
run and between code versions — wall clock is the only free variable.
Benchmarks are repeated ``repeats`` times and the minimum wall time is
kept: the minimum is the run least disturbed by the host (GC pauses,
scheduler preemption), which is the quantity a code change actually
moves.

``engine_micro`` times only the transmission (session construction and
calibration excluded) and divides the engine's executed-event count by
the wall time; ``fig8_point`` and ``noise_point`` time a whole
experiment point end to end, construction included, because that is the
latency a grid sweep pays per point.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

import repro

#: Deterministic payload pattern shared by every benchmark.
_PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]

#: Report schema version (bump when the JSON layout changes).
SCHEMA = 1


def _payload(bits: int) -> list[int]:
    reps = (bits + len(_PAYLOAD) - 1) // len(_PAYLOAD)
    return (_PAYLOAD * reps)[:bits]


def engine_micro(
    seed: int = 0, bits: int = 48, repeats: int = 3
) -> dict[str, Any]:
    """Engine throughput: events/second over a default-config session.

    A fresh session is built per repeat (so cache/coherence state never
    leaks between repeats) and only :meth:`transmit` is timed.
    """
    from repro.channel.config import scenario_by_name
    from repro.channel.session import ChannelSession, SessionConfig

    payload = _payload(bits)
    best_wall = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        session = ChannelSession(SessionConfig(
            scenario=scenario_by_name("LExclc-LSharedb"),
            seed=seed,
            calibration_samples=200,
        ))
        counter = session.machine.stats.counter_handle("engine.events")
        start_events = counter.value
        t0 = time.perf_counter()
        session.transmit(payload)
        wall = time.perf_counter() - t0
        events = counter.value - start_events
        if wall < best_wall:
            best_wall = wall
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall,
    }


def fig8_point(repeats: int = 3, bits: int = 100) -> dict[str, Any]:
    """One end-to-end Figure 8 bandwidth point (remote-E, 500 Kbit/s)."""
    from repro.channel.session import execute_point

    payload = _payload(bits)
    best_wall = float("inf")
    accuracy = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = execute_point(
            scenario="RExclc-LSharedb", payload=payload,
            rate_kbps=500.0, seed=0,
        )
        wall = time.perf_counter() - t0
        accuracy = result.accuracy
        if wall < best_wall:
            best_wall = wall
    return {"wall_s": best_wall, "accuracy": accuracy}


def noise_point(repeats: int = 3, bits: int = 24) -> dict[str, Any]:
    """One end-to-end point with two co-located noise workloads."""
    from repro.channel.session import execute_point

    payload = _payload(bits)
    best_wall = float("inf")
    accuracy = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = execute_point(
            scenario="LExclc-LSharedb", payload=payload,
            seed=0, noise_threads=2,
        )
        wall = time.perf_counter() - t0
        accuracy = result.accuracy
        if wall < best_wall:
            best_wall = wall
    return {"wall_s": best_wall, "accuracy": accuracy}


def run_all(repeats: int = 3, quick: bool = False) -> dict[str, Any]:
    """Run every benchmark and return the full report dict."""
    if quick:
        micro_bits, fig8_bits, noise_bits = 16, 24, 8
    else:
        micro_bits, fig8_bits, noise_bits = 48, 100, 24
    return {
        "schema": SCHEMA,
        "date": time.strftime("%Y-%m-%d"),
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "repeats": repeats,
        "quick": quick,
        "benchmarks": {
            "engine_micro": engine_micro(bits=micro_bits, repeats=repeats),
            "fig8_point": fig8_point(repeats=repeats, bits=fig8_bits),
            "noise_point": noise_point(repeats=repeats, bits=noise_bits),
        },
    }


def default_report_name(date: str | None = None) -> str:
    """The canonical report filename, ``BENCH_<YYYY-MM-DD>.json``."""
    return f"BENCH_{date or time.strftime('%Y-%m-%d')}.json"


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Write *report* as indented JSON; returns the path written."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a report previously written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.20,
) -> list[str]:
    """Compare two reports; return a list of human-readable failures.

    The gate is on engine events/second: the current run must reach at
    least ``(1 - max_regression)`` of the baseline's throughput.  Wall
    times of the end-to-end points are reported as context but do not
    gate (they include calibration and are noisier on shared runners).
    """
    problems: list[str] = []
    try:
        base_eps = baseline["benchmarks"]["engine_micro"]["events_per_sec"]
        cur_eps = current["benchmarks"]["engine_micro"]["events_per_sec"]
    except KeyError as exc:
        return [f"malformed report: missing {exc}"]
    floor = base_eps * (1.0 - max_regression)
    if cur_eps < floor:
        problems.append(
            f"engine_micro regressed: {cur_eps:,.0f} events/s < "
            f"{floor:,.0f} (baseline {base_eps:,.0f} - {max_regression:.0%})"
        )
    return problems

"""Transmission-quality metrics: raw-bit accuracy, error budget, rates.

The paper counts three raw-bit error kinds (Section VIII-B): lost bits,
duplicated bits and flipped bits.  :func:`align_bits` computes the
minimum-edit alignment between sent and received bit strings and reports
all three, from which raw-bit accuracy = matches / bits sent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.latency import kbps


@dataclass(frozen=True)
class Alignment:
    """Outcome of aligning a received bit string against the sent one."""

    matches: int
    flips: int       # substitutions
    losses: int      # deletions (sent but not received)
    duplicates: int  # insertions (received but never sent)
    sent: int
    received: int

    @property
    def accuracy(self) -> float:
        """Raw-bit accuracy: correctly received bits / bits sent."""
        if self.sent == 0:
            return 1.0 if self.received == 0 else 0.0
        return self.matches / self.sent

    @property
    def error_rate(self) -> float:
        """1 - accuracy."""
        return 1.0 - self.accuracy


def align_bits(sent: list[int], received: list[int]) -> Alignment:
    """Minimum-edit alignment of two bit strings.

    Uses the standard Levenshtein DP (unit costs) and backtraces to
    count matches, substitutions, insertions and deletions.
    """
    n, m = len(sent), len(received)
    if n == 0 or m == 0:
        return Alignment(
            matches=0, flips=0, losses=n, duplicates=m, sent=n, received=m
        )
    a = np.asarray(sent, dtype=np.int8)
    b = np.asarray(received, dtype=np.int8)
    dp = np.zeros((n + 1, m + 1), dtype=np.int32)
    dp[0, :] = np.arange(m + 1)
    dp[:, 0] = np.arange(n + 1)
    for i in range(1, n + 1):
        sub = dp[i - 1, :-1] + (b != a[i - 1])
        row = dp[i]
        prev = dp[i - 1]
        # dp[i][j] = min(prev[j]+1, dp[i][j-1]+1, sub[j-1]); the second
        # term needs a left-to-right scan.
        np.minimum(prev[1:] + 1, sub, out=row[1:])
        for j in range(1, m + 1):
            left = row[j - 1] + 1
            if left < row[j]:
                row[j] = left
    # Backtrace.
    matches = flips = losses = dups = 0
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0 and dp[i, j] == dp[i - 1, j - 1] + (a[i - 1] != b[j - 1]):
            if a[i - 1] == b[j - 1]:
                matches += 1
            else:
                flips += 1
            i -= 1
            j -= 1
        elif i > 0 and dp[i, j] == dp[i - 1, j] + 1:
            losses += 1
            i -= 1
        else:
            dups += 1
            j -= 1
    return Alignment(
        matches=matches, flips=flips, losses=losses, duplicates=dups,
        sent=n, received=m,
    )


def raw_bit_accuracy(sent: list[int], received: list[int]) -> float:
    """Convenience wrapper: alignment accuracy only."""
    return align_bits(sent, received).accuracy


def transmission_rate_kbps(bits: int, cycles: float) -> float:
    """Raw transmission rate in Kbits/s over a cycle span."""
    return kbps(bits, cycles)


def goodput_kbps(info_bits: int, cycles: float) -> float:
    """Effective information rate (payload bits only) in Kbits/s."""
    return kbps(info_bits, cycles)

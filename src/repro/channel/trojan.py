"""The trojan: Algorithm 1 of the paper.

The trojan is multi-threaded: a *controller* walks the payload and
decides which (location, state) combination the shared block B should be
in during each slot, and *worker* threads — placed on local/remote cores
per Table I — keep re-loading B so the intended coherence state is
re-established after every flush the spy issues.

Workers coordinate with the controller through a plain shared object;
this models ordinary intra-process shared memory inside the trojan and
carries no information to the spy, who only ever observes load timing.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.channel.config import (
    _THREADS_NEEDED,
    LineState,
    Location,
    ProtocolParams,
    Scenario,
    StatePair,
)
from repro.sim.events import Delay, Load, Store
from repro.sim.thread import Cpu


@dataclass(frozen=True)
class WorkerRole:
    """Identity of one trojan worker: its location and rank there."""

    location: Location
    index: int


@dataclass
class TrojanControl:
    """Shared state between the trojan's controller and its workers."""

    active_pair: StatePair | None = None
    running: bool = True
    generation: int = 0
    transitions: int = 0
    bits_sent: list[int] = field(default_factory=list)

    def set_pair(self, pair: StatePair | None) -> None:
        """Activate a new (location, state) target (None = go idle)."""
        if pair != self.active_pair:
            self.transitions += 1
        self.active_pair = pair
        self.generation += 1

    def stop(self) -> None:
        """Tell every worker to exit its loop."""
        self.running = False
        self.active_pair = None

    def snapshot(self) -> tuple:
        """Checkpoint cursor payload: every field a re-drive re-mutates.

        Taken by the controller *before* each step's ``set_pair``; on
        restore the re-driven controller re-applies the step's mutations
        on top of this state, landing exactly on the parked values.
        """
        return (
            self.active_pair, self.running, self.generation,
            self.transitions, len(self.bits_sent),
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (truncating ``bits_sent``)."""
        pair, running, generation, transitions, n_bits = snap
        self.active_pair = pair
        self.running = running
        self.generation = generation
        self.transitions = transitions
        del self.bits_sent[n_bits:]

    def is_active(self, role: WorkerRole) -> bool:
        """Whether a worker with *role* should be re-loading B now."""
        pair = self.active_pair
        if pair is None or role.location is not pair.location:
            return False
        return role.index < _THREADS_NEEDED[pair.state]


def worker_program(
    control: TrojanControl,
    role: WorkerRole,
    block_va: int,
    params: ProtocolParams,
    cursor: tuple | None = None,
) -> Callable[[Cpu], Generator]:
    """A trojan reader thread: keep B cached while my role is active.

    While active the worker re-loads B every ``params.reload_period``
    cycles, restoring the target coherence state after each spy flush;
    while inactive it polls the control state at the same period.

    For the OWNED pair the rank-0 worker *stores* instead, paced at the
    reload period: the dirty write gives the block an owner for rank
    1's read to pull into O.  Store-only pacing matters — every state
    the block passes through between the spy's flush and the settled O
    (DRAM-filled E at the reader, M at the writer, O) services reads
    from an owning cache, so the spy never observes the ownerless
    shared state that is the O channel's *boundary* symbol.  A
    load-then-dirty writer would pass through exactly that state (a
    clean E owner demotes to S when the reader hits it) and leak
    boundary labels into communication slots.
    """

    def program(cpu: Cpu) -> Generator:
        # Hot loop: this program runs once per worker reload for the
        # whole transmission, so the ops it issues are pre-built frozen
        # instances yielded directly (every delay period here is a
        # closure constant) — no per-iteration op or helper-generator
        # allocation.  The op/result protocol is identical to going
        # through the Cpu helpers.
        load_op = Load(block_va)
        store_op = Store(block_va, 1)
        idle_op = Delay(params.reload_period)
        backoff_op = Delay(params.worker_backoff_fraction * params.slot_cycles)
        spin_op = Delay(params.worker_spin_cycles)
        adaptive = params.adaptive_backoff
        refill_floor = params.worker_refill_floor
        role_location = role.location
        role_index = role.index
        owned = LineState.OWNED
        needed = _THREADS_NEEDED
        mark = cpu.mark
        resume = cursor
        while True:
            if resume is not None:
                # Re-drive: replay the parked iteration's poll verbatim
                # instead of re-polling the live control object (whose
                # state may have moved past the park point).
                running, pair = resume
                resume = None
            else:
                # Inlined TrojanControl.is_active(role) — one poll per
                # worker wakeup for the whole transmission.
                running, pair = control.running, control.active_pair
            mark((running, pair))
            if not running:
                break
            if (
                pair is not None
                and role_location is pair.location
                and role_index < needed[pair.state]
            ):
                if role_index == 0 and pair.state is owned:
                    # Re-dirty at the idle cadence, not the spin one: an
                    # O-line store is a full RFO, and spinning RFOs
                    # congest the ring enough to push the spy's samples
                    # out of the calibrated owner-service band.
                    yield store_op
                    yield idle_op
                    continue
                # Spin: re-load as fast as the machine allows, with only a
                # tiny loop cost between issues, so the target state is
                # re-established as soon as possible after each spy flush.
                result = yield load_op
                if adaptive and result.latency >= refill_floor:
                    # We just re-established the state after a flush;
                    # stay quiet until the next slot so the spy's flush
                    # primitive (clflush or eviction sweep) is not
                    # disturbed by our reloads.
                    yield backoff_op
                else:
                    yield spin_op
            else:
                yield idle_op

    return program


def controller_program(
    control: TrojanControl,
    scenario: Scenario,
    params: ProtocolParams,
    block_va: int,
    payload: list[int],
    lead_in_slots: int = 4,
    tail_slots: int = 4,
    cursor: tuple | None = None,
) -> Callable[[Cpu], Generator]:
    """Algorithm 1: modulate B's coherence state to send *payload*.

    For each bit the controller holds B in the boundary combination CSb
    for ``cb`` slots and then in the communication combination CSc for
    ``c1`` (bit 1) or ``c0`` (bit 0) slots.  Transitions flush B from
    all caches so the workers rebuild the new placement immediately;
    the spy's own flush-per-slot keeps the placement fresh afterwards.

    The hold sequence is flattened into an indexed step list so the
    program's position is one integer — the checkpoint ``cursor``
    carries ``(step index, control snapshot)``; a re-driven controller
    rewinds the shared control object and replays the parked step's
    mutations on top, landing exactly on the park-time state.
    """

    # One (pair, slots, bit-to-record) tuple per hold, in emission
    # order.  The lead-in parks B in the communication state so the
    # spy's start-of-transmission poll locks on when the first boundary
    # arrives (Algorithm 2 waits for a Tb observation); the closing
    # boundary delimits the final communication run; channels whose
    # quiet state is itself a symbol (the LRU channel's COLD) park B in
    # a distinct out-of-band terminator pair long enough for the spy's
    # end-of-transmission run to complete.
    steps: list[tuple[StatePair, int, int | None]] = [
        (scenario.csc, lead_in_slots, None)
    ]
    for bit in payload:
        steps.append((scenario.csb, params.cb, None))
        steps.append((scenario.csc, params.c1 if bit else params.c0, bit))
    steps.append((scenario.csb, params.cb, None))
    if scenario.terminator is not None:
        steps.append((scenario.terminator, params.end_run + 2, None))
    n_steps = len(steps)

    def program(cpu: Cpu) -> Generator:
        start = 0
        if cursor is not None:
            start, snap = cursor
            control.restore(snap)
        mark = cpu.mark
        for index in range(start, n_steps):
            pair, slots, bit = steps[index]
            mark((index, control.snapshot()))
            control.set_pair(pair)
            yield from cpu.flush(block_va)
            yield from cpu.delay(slots * params.slot_cycles)
            if bit is not None:
                control.bits_sent.append(bit)
        # Go dark: the spy sees out-of-band samples and ends reception.
        mark((n_steps, control.snapshot()))
        control.stop()
        yield from cpu.delay(tail_slots * params.slot_cycles)

    return program


def worker_roles(scenario: Scenario) -> list[WorkerRole]:
    """The worker set Table I prescribes for *scenario*."""
    roles = [
        WorkerRole(Location.LOCAL, i) for i in range(scenario.local_threads)
    ]
    roles.extend(
        WorkerRole(Location.REMOTE, i) for i in range(scenario.remote_threads)
    )
    return roles

"""Pre-transmission synchronization (Section VII-A).

Before the first bit (and after any context switch involving either
party), the trojan and spy perform a timing handshake on the shared
block: the trojan repeatedly flushes and reloads B; the spy periodically
flushes and times a reload.  The trojan proceeds once it has observed a
run of long (memory) latencies on its own reloads — evidence that a
second party keeps flushing its freshly loaded block — and the spy locks
on once its timed reloads converge to a stable coherence band, evidence
that the trojan is actively re-caching B.  The paper measures this
handshake at ~90 ms on average; the default knobs here land in that
regime at the modeled 2.67 GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.calibration import LatencyBands
from repro.kernel.syscalls import Kernel
from repro.mem.latency import cycles_to_seconds
from repro.sim.thread import Cpu


@dataclass(frozen=True)
class SyncParams:
    """Knobs of the synchronization handshake.

    Defaults model the coarse, scheduler-quantum-scale cadence the real
    attack uses before fine-grained transmission begins (the paper's
    ~90 ms average handshake).
    """

    #: Flush+reload rounds the trojan performs (the paper uses ~20).
    trojan_rounds: int = 20
    #: Cycle period of one trojan flush+reload round.
    trojan_round_cycles: float = 12_000_000.0
    #: Spy sampling period during the handshake.
    spy_poll_cycles: float = 36_000_000.0
    #: Consecutive in-band spy samples that declare the channel live.
    spy_stable_run: int = 5
    #: Cumulative long-latency (re-flushed) trojan observations required.
    trojan_long_run: int = 5
    #: Give up after this many spy polls.
    max_spy_polls: int = 600


def resync_backoff_cycles(
    attempt: int,
    base: float = 2_000_000.0,
    factor: float = 2.0,
    cap: float = 64_000_000.0,
) -> float:
    """Idle cycles before re-synchronization *attempt* (1-based).

    Exponential and fully deterministic (the simulated clock is the only
    entropy a simulation is allowed): a desynchronized pair backs off
    long enough for transient disturbances — a preemption burst, a KSM
    re-merge scan — to clear before the next handshake.
    """
    if attempt < 1:
        return 0.0
    return min(cap, base * factor ** (attempt - 1))


@dataclass
class SyncResult:
    """Outcome of the handshake."""

    synced: bool = False
    trojan_cycles: float = 0.0
    spy_cycles: float = 0.0
    spy_latencies: list[float] = field(default_factory=list)
    trojan_latencies: list[float] = field(default_factory=list)

    @property
    def duration_cycles(self) -> float:
        """Handshake duration (the slower party defines it)."""
        return max(self.trojan_cycles, self.spy_cycles)

    @property
    def duration_ms(self) -> float:
        """Handshake duration in milliseconds at the modeled clock."""
        return cycles_to_seconds(self.duration_cycles) * 1e3


def trojan_sync_program(
    result: SyncResult,
    params: SyncParams,
    bands: LatencyBands,
    block_va: int,
):
    """The trojan side: flush, re-warm, wait, then time a reload.

    The timed reload comes back long (memory latency) exactly when a
    second party flushed the freshly warmed block during the wait — the
    spy announcing itself.  The trojan finishes after its minimum round
    count once enough long observations have accumulated.
    """
    dram_floor = bands.dram.lo if bands.dram is not None else 280.0

    def program(cpu: Cpu):
        start = yield from cpu.rdtsc()
        longs = 0
        rounds = 0
        while rounds < params.trojan_rounds or longs < params.trojan_long_run:
            yield from cpu.flush(block_va)
            yield from cpu.load(block_va)  # re-warm B into our cache
            yield from cpu.delay(params.trojan_round_cycles)
            load = yield from cpu.timed_load(block_va)
            result.trojan_latencies.append(load.latency)
            if load.latency >= dram_floor:
                longs += 1
            rounds += 1
            if rounds > params.max_spy_polls:  # safety valve
                break
        end = yield from cpu.rdtsc()
        result.trojan_cycles = end - start

    return program


def spy_sync_program(
    result: SyncResult,
    params: SyncParams,
    bands: LatencyBands,
    block_va: int,
):
    """The spy side: poll until reload latencies stabilize in a band."""

    def in_coherence_band(latency: float) -> bool:
        label = bands.classify(latency)
        return label is not None and label != "dram"

    def program(cpu: Cpu):
        start = yield from cpu.rdtsc()
        stable = 0
        polls = 0
        while stable < params.spy_stable_run:
            yield from cpu.flush(block_va)
            yield from cpu.delay(params.spy_poll_cycles)
            load = yield from cpu.timed_load(block_va)
            result.spy_latencies.append(load.latency)
            stable = stable + 1 if in_coherence_band(load.latency) else 0
            polls += 1
            if polls >= params.max_spy_polls:
                result.synced = False
                return
        end = yield from cpu.rdtsc()
        result.spy_cycles = end - start
        result.synced = True

    return program


def run_synchronization(
    kernel: Kernel,
    bands: LatencyBands,
    trojan_proc,
    spy_proc,
    trojan_va: int,
    spy_va: int,
    trojan_core: int,
    spy_core: int,
    params: SyncParams | None = None,
    tag: str = "",
) -> SyncResult:
    """Run the handshake on an existing session stack; returns the result.

    Spawns one trojan thread and one spy thread, runs the engine until
    both finish, and reports durations.  The trojan's reloads keep B
    cached, so the spy's flush+reload lands in a coherence band rather
    than DRAM — that convergence is the sync signal.  *tag* suffixes the
    thread names so repeated handshakes (resync attempts) stay unique in
    the simulator's thread table.
    """
    params = params if params is not None else SyncParams()
    result = SyncResult()
    kernel.spawn(
        trojan_proc,
        f"sync-trojan{tag}",
        trojan_sync_program(result, params, bands, trojan_va),
        core_id=trojan_core,
        daemon=True,
    )
    kernel.spawn(
        spy_proc,
        f"sync-spy{tag}",
        spy_sync_program(result, params, bands, spy_va),
        core_id=spy_core,
        daemon=False,
    )
    kernel.sim.run()
    return result

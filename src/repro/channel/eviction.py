"""Timing-based eviction-set discovery (attacker-side, no kernel help).

:meth:`repro.kernel.syscalls.Kernel.build_eviction_set` uses the
kernel's knowledge of the physical layout; a real attacker has only
virtual addresses and a timer.  This module implements the classic
discovery procedure (as in Liu et al. [12], which the paper cites for
the eviction alternative to clflush):

1. allocate a large candidate buffer;
2. *test* whether a candidate set evicts the target: load the target,
   traverse the candidates, time a target reload — a slow reload means
   the candidates evicted it;
3. *reduce* greedily: drop one candidate at a time (or group-by-group),
   keeping the set minimal while it still evicts.

Everything here runs on machine accesses and timing alone — the same
information a user-space attacker has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChannelError
from repro.kernel.process import Process
from repro.kernel.syscalls import Kernel
from repro.mem.cacheline import LINE_SIZE
from repro.mem.physical import PAGE_SIZE

#: Reload latency above which the target is considered evicted (between
#: the coherence bands and the DRAM band).
EVICTION_LATENCY_THRESHOLD = 280.0


@dataclass
class DiscoveryStats:
    """Bookkeeping for one discovery run."""

    candidates_allocated: int = 0
    eviction_tests: int = 0
    accesses: int = 0


class EvictionSetDiscovery:
    """Find a minimal eviction set for a target line by timing alone.

    Parameters
    ----------
    kernel:
        The kernel the attacking process runs on (used only to issue
        machine accesses the way the process itself would — translation
        happens through the process's own page table).
    process:
        The attacker's process.
    core_id:
        Core the attacker's measurement thread is pinned to.
    """

    def __init__(self, kernel: Kernel, process: Process, core_id: int = 0):
        self.kernel = kernel
        self.process = process
        self.core_id = core_id
        self.stats = DiscoveryStats()
        self._clock = 0.0

    # -- machine access as the attacker's process -----------------------

    def _load(self, vaddr: int) -> float:
        paddr = self.process.translate(vaddr)
        _value, latency, _path = self.kernel.machine.load(
            self.core_id, paddr, self._clock
        )
        self._clock += latency
        self.stats.accesses += 1
        return latency

    def _flush(self, vaddr: int) -> None:
        paddr = self.process.translate(vaddr)
        self._clock += self.kernel.machine.flush(
            self.core_id, paddr, self._clock
        )

    # -- the discovery procedure ----------------------------------------

    def evicts(self, target_va: int, candidate_vas: list[int]) -> bool:
        """Timing test: does traversing *candidate_vas* evict the target?"""
        self.stats.eviction_tests += 1
        self._load(target_va)           # target cached (MRU)
        for vaddr in candidate_vas:     # traverse candidates
            self._load(vaddr)
        latency = self._load(target_va)  # timed reload
        return latency >= EVICTION_LATENCY_THRESHOLD

    def discover(
        self,
        target_va: int,
        pool_pages: int = 2_048,
        max_set_size: int | None = None,
    ) -> list[int]:
        """Return a minimal eviction set for *target_va*'s line.

        Allocates a *pool_pages*-page candidate buffer, filters it down
        to the lines that conflict with the target, then greedily
        reduces to a minimal set (associativity-many lines).  Raises
        :class:`~repro.errors.ChannelError` if the pool is too small to
        evict the target at all.
        """
        cfg = self.kernel.machine.config
        assoc = cfg.llc_assoc if max_set_size is None else max_set_size
        pool_base = self.process.mmap(pool_pages)
        self.stats.candidates_allocated = pool_pages
        # One candidate line per page, all at the target's page offset:
        # same-offset lines are the only ones that can share the
        # target's set on a page-granular mapping.
        offset = target_va % PAGE_SIZE - (target_va % LINE_SIZE)
        candidates = [
            pool_base + page * PAGE_SIZE + offset
            for page in range(pool_pages)
        ]
        self._flush(target_va)
        if not self.evicts(target_va, candidates):
            raise ChannelError(
                "candidate pool does not evict the target; enlarge it"
            )
        # Group reduction: repeatedly split into assoc+1 groups and drop
        # any group whose removal still leaves an evicting set.
        working = candidates
        while len(working) > assoc:
            n_groups = assoc + 1
            size = (len(working) + n_groups - 1) // n_groups
            groups = [
                working[i:i + size] for i in range(0, len(working), size)
            ]
            for group in groups:
                reduced = [va for va in working if va not in set(group)]
                if reduced and self.evicts(target_va, reduced):
                    working = reduced
                    break
            else:
                # No whole group can be dropped; groups mix essential
                # and non-essential lines.  Fall through to
                # one-at-a-time elimination.
                break
        # Singleton elimination: strip any line whose removal still
        # leaves an evicting set (cheap once the set is small).
        for vaddr in list(working):
            if len(working) <= assoc:
                break
            reduced = [va for va in working if va != vaddr]
            if self.evicts(target_va, reduced):
                working = reduced
        return working

"""The spy: Algorithm 2 of the paper.

A single-threaded observer that repeatedly flushes the shared block and
times a reload one sampling slot later.  Three phases: poll for the
start of a transmission, record latencies until the channel goes quiet,
then hand the samples to the decoder (:mod:`repro.channel.decoder`).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.channel.config import ProtocolParams
from repro.channel.decoder import BitDecoder, Sample
from repro.errors import SyncTimeoutError
from repro.sim.events import Delay, Fence, Flush, Load, Rdtsc
from repro.sim.thread import Cpu


@dataclass
class SpyResult:
    """Everything the spy recorded during one reception."""

    samples: list[Sample] = field(default_factory=list)
    poll_samples: list[Sample] = field(default_factory=list)
    started_at: float | None = None
    finished_at: float | None = None
    timed_out: bool = False

    @property
    def reception_cycles(self) -> float:
        """Duration of the reception window in cycles."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


def eviction_flusher(eviction_set: list[int]) -> Callable[[Cpu], Generator]:
    """A flush primitive built from LLC set eviction (Section VI-B).

    Loading every way of the target's LLC set evicts the shared block
    from the inclusive LLC, back-invalidating all private copies on the
    socket — the paper's clflush alternative for environments where
    ``clflush`` is unavailable.  Slower than clflush (one load per way),
    so evict-based channels run at lower slot rates.
    """

    def flusher(cpu: Cpu) -> Generator:
        for vaddr in eviction_set:
            yield from cpu.load(vaddr)

    return flusher


def spy_program(
    result: SpyResult,
    decoder: BitDecoder,
    params: ProtocolParams,
    block_va: int,
    flusher: Callable[[Cpu], Generator] | None = None,
    eviction_set: list[int] | None = None,
    cursor: tuple | None = None,
) -> Callable[[Cpu], Generator]:
    """Build the spy's thread program.

    The spy performs ``flush B; wait Ts; timed load B`` every slot.  It
    starts recording at the first boundary-band (Tb) observation and
    stops after ``params.end_run`` consecutive samples fall outside both
    Tc and Tb — the trojan going dark (Algorithm 2's N).

    ``flusher`` replaces the default clflush with an alternative flush
    primitive (see :func:`eviction_flusher`); ``eviction_set`` does the
    same from plain data (the flusher closure is built here), which is
    the form a checkpointed spy records — closures don't pickle,
    address lists do.

    ``cursor`` resumes a checkpointed spy: ``(phase, polls, quiet,
    next_slot)`` is the whole inter-slot state, so a re-driven program
    re-enters the parked slot with the pacing grid and the phase
    counters exactly where they were.
    """
    if flusher is None and eviction_set is not None:
        flusher = eviction_flusher(list(eviction_set))

    # Slot pacing state: the spy anchors its sampling grid on absolute
    # deadlines so its period equals the agreed slot duration regardless
    # of how long each timed load happened to take.  (A real spy does
    # the same: it spins on rdtsc until the next slot boundary.)
    pacing = {"next_slot": None}

    # Hot loop: one sample_once per slot for the whole reception.  The
    # fixed ops (rdtsc, flush, the fence/load/fence of a timed load, the
    # constant post-flush wait) are pre-built frozen instances yielded
    # directly — same op/result protocol as the Cpu helpers without a
    # helper-generator allocation per primitive.  Only the pacing delay
    # is allocated per slot (its duration varies).
    rdtsc_op = Rdtsc()
    fence_op = Fence()
    flush_op = Flush(block_va)
    load_op = Load(block_va)
    wait_op = Delay(params.spy_wait_cycles)
    label = decoder.label

    def sample_once(cpu: Cpu) -> Generator:
        now = (yield rdtsc_op).timestamp
        target = pacing["next_slot"]
        if target is None:
            target = now
        if target > now:
            yield Delay(target - now)
        else:
            # We overran (a slow load or a preemption); re-anchor.
            target = now
        pacing["next_slot"] = target + params.slot_cycles
        if flusher is None:
            yield flush_op
        else:
            yield from flusher(cpu)
        yield wait_op
        # Fence-bracketed load, as the paper's rdtsc-timed measurement.
        yield fence_op
        load = yield load_op
        yield fence_op
        return Sample(
            timestamp=load.timestamp,
            latency=load.latency,
            label=label(load.latency),
            path=load.path,
        )

    def program(cpu: Cpu) -> Generator:
        mark = cpu.mark
        phase, polls, quiet = 1, 0, 0
        if cursor is not None:
            phase, polls, quiet, next_slot = cursor
            pacing["next_slot"] = next_slot
        # Phase 1: poll for the start of transmission.
        while phase == 1:
            mark((1, polls, quiet, pacing["next_slot"]))
            sample = yield from sample_once(cpu)
            result.poll_samples.append(sample)
            if sample.label == "b":
                result.started_at = sample.timestamp
                result.samples.append(sample)
                phase = 2
                continue
            polls += 1
            if polls >= params.max_poll_slots:
                result.timed_out = True
                raise SyncTimeoutError(
                    f"spy saw no transmission start in {polls} slots"
                )
        # Phase 2: reception.
        while quiet < params.end_run:
            mark((2, polls, quiet, pacing["next_slot"]))
            sample = yield from sample_once(cpu)
            result.samples.append(sample)
            quiet = quiet + 1 if sample.label == "x" else 0
            if len(result.samples) >= params.max_reception_slots:
                # The channel never went quiet (e.g. a defender keeps
                # the block cached); give up with what we have.
                result.timed_out = True
                result.finished_at = sample.timestamp
                return
        # Drop the trailing quiet run; it is not part of the payload.
        del result.samples[-params.end_run:]
        result.finished_at = (
            result.samples[-1].timestamp if result.samples else None
        )

    return program

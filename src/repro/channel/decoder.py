"""Spy-side decoding: latency samples -> bits (Algorithm 2, phase 3).

The spy records one latency per sampling slot.  Each is classified into
``'c'`` (communication band Tc), ``'b'`` (boundary band Tb) or ``'x'``
(neither — a DRAM miss, a half-established state, or jitter).  The
translation walk is the paper's: find a boundary run, count consecutive
``'c'`` samples, and compare the count against Thold to emit a 1 or a 0.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.channel.calibration import LatencyBands
from repro.channel.config import ProtocolParams, Scenario
from repro.sim.events import AccessPath


@dataclass(frozen=True)
class Sample:
    """One timed load observed by the spy.

    ``path`` records the service path ground truth from the simulator —
    the spy's decoding never uses it, but tests and diagnostics do.
    """

    timestamp: float
    latency: float
    label: str  # 'c', 'b' or 'x'
    path: object = None


#: Tag identifying the packed-sample wire format produced by
#: :func:`pack_samples`.  Bump when the tuple layout changes.
PACKED_SAMPLES_TAG = "samples/v1"


def pack_samples(samples: list[Sample]) -> tuple | list[Sample]:
    """Encode a sample list as a compact, picklable tuple.

    A transmission's dominant payload is its latency trace — thousands
    of :class:`Sample` records, each pickled as a full object with four
    attribute references.  The packed form stores the numeric fields as
    one native ``array('d')`` blob, the one-character labels as a
    string, and the :class:`~repro.sim.events.AccessPath` ground truth
    as a byte-per-sample index into a small name table — about 17 bytes
    per sample instead of ~120.  Used both for IPC payloads (worker ->
    parent pickles) and :class:`~repro.runner.cache.ResultCache`
    entries.

    Samples that do not fit the compact model (multi-character labels,
    a ``path`` that is neither None nor an ``AccessPath``) are returned
    unpacked; :func:`unpack_samples` passes plain lists through, so the
    fallback stays round-trippable.
    """
    numeric = array("d")
    labels: list[str] = []
    path_codes = bytearray()
    path_names: list[str] = []
    path_index: dict[object, int] = {None: 0}
    for sample in samples:
        path = sample.path
        code = path_index.get(path)
        if code is None:
            if not isinstance(path, AccessPath) or len(path_index) > 255:
                return list(samples)
            path_names.append(path.value)
            code = len(path_names)
            path_index[path] = code
        if len(sample.label) != 1:
            return list(samples)
        numeric.append(sample.timestamp)
        numeric.append(sample.latency)
        labels.append(sample.label)
        path_codes.append(code)
    return (
        PACKED_SAMPLES_TAG,
        len(samples),
        numeric.tobytes(),
        "".join(labels),
        bytes(path_codes),
        tuple(path_names),
    )


def unpack_samples(packed: tuple | list[Sample]) -> list[Sample]:
    """Inverse of :func:`pack_samples` (plain lists pass through)."""
    if isinstance(packed, list):
        return packed
    tag, count, raw, labels, path_codes, path_names = packed
    if tag != PACKED_SAMPLES_TAG:
        raise ValueError(f"unknown packed-sample format {tag!r}")
    numeric = array("d")
    numeric.frombytes(raw)
    paths: list[object] = [None]
    paths.extend(AccessPath(name) for name in path_names)
    return [
        Sample(
            timestamp=numeric[2 * i],
            latency=numeric[2 * i + 1],
            label=labels[i],
            path=paths[path_codes[i]],
        )
        for i in range(count)
    ]


@dataclass
class DecodeReport:
    """Decoded bits plus diagnostics about the walk."""

    bits: list[int]
    runs: list[tuple[str, int]]
    n_samples: int
    n_boundary_runs: int
    n_unclassified: int


class BitDecoder:
    """Classifies and translates the spy's samples for one scenario."""

    def __init__(
        self,
        bands: LatencyBands,
        scenario: Scenario,
        params: ProtocolParams,
    ):
        self._tc = bands.band_for(scenario.csc)
        self._tb = bands.band_for(scenario.csb)
        bands.check_separation(scenario.csc, scenario.csb)
        self._params = params

    def label(self, latency: float) -> str:
        """Classify one latency into 'c', 'b' or 'x'.

        When the Tc and Tb bands both claim the latency (possible only
        with pathological calibration) the nearer band center wins.
        """
        in_c = self._tc.contains(latency)
        in_b = self._tb.contains(latency)
        if in_c and in_b:
            return (
                "c"
                if abs(latency - self._tc.center) <= abs(latency - self._tb.center)
                else "b"
            )
        if in_c:
            return "c"
        if in_b:
            return "b"
        return "x"

    def smooth(self, labels: list[str]) -> list[str]:
        """Repair isolated one-sample dropouts.

        A single unclassified ('x') sample sandwiched between two
        identical labels is almost always a jitter tail rather than a
        state change; real attack decoders apply the same fix.
        Classified samples are never overridden: an isolated flip into
        the *other* band still decodes as a short run, which the
        threshold logic usually survives, whereas rewriting it could
        erase a legitimate two-slot run entirely.
        """
        if len(labels) < 3:
            return list(labels)
        out = list(labels)
        for i in range(1, len(out) - 1):
            if out[i] == "x" and labels[i - 1] == labels[i + 1] != "x":
                out[i] = labels[i - 1]
        return out

    def repair_runs(
        self, runs: list[tuple[str, int]]
    ) -> list[tuple[str, int]]:
        """Repair single-sample runs that cannot be legitimate signal.

        With slot-locked sampling, a real boundary spans at least
        ``cb - 1`` samples and a real communication phase at least
        ``c0 - 1``; both are >= 2 with the default parameters.  Hence:

        * a 1-sample 'b' run flanked by 'c' runs is a flipped sample
          inside a communication run — rewrite it to 'c' (this repairs
          the classic split-'1' error);
        * a 1-sample 'c' run flanked by 'b' runs is a flipped boundary
          sample — drop it (keeping it would insert a spurious '0').
        """
        if self._params.cb < 3 or self._params.c0 < 2:
            return list(runs)
        repaired: list[tuple[str, int]] = []
        n = len(runs)
        for i, (label, count) in enumerate(runs):
            prev_label = runs[i - 1][0] if i > 0 else None
            next_label = runs[i + 1][0] if i < n - 1 else None
            if count == 1 and label == "b" and prev_label == next_label == "c":
                label = "c"
            elif count == 1 and label == "c" and prev_label == next_label == "b":
                label = "b"
            if repaired and repaired[-1][0] == label:
                repaired[-1] = (label, repaired[-1][1] + count)
            else:
                repaired.append((label, count))
        return repaired

    @staticmethod
    def run_length(labels: list[str]) -> list[tuple[str, int]]:
        """Run-length encode a label sequence."""
        runs: list[tuple[str, int]] = []
        for label in labels:
            if runs and runs[-1][0] == label:
                runs[-1] = (label, runs[-1][1] + 1)
            else:
                runs.append((label, 1))
        return runs

    def decode(self, samples: list[Sample]) -> DecodeReport:
        """Translate samples into bits (the paper's translation period).

        The walk mirrors Algorithm 2: advance to a Tb (boundary) run,
        then count *consecutive* Tc samples; counts above Thold decode
        as '1', others as '0'.  Samples between the end of a Tc run and
        the next boundary are skipped, so dropouts inside a run truncate
        the count and can flip a bit — the raw-bit errors of Figure 8.
        """
        labels = self.smooth([s.label for s in samples])
        runs = self.repair_runs(self.run_length(labels))
        bits: list[int] = []
        threshold = self._params.threshold
        i = 0
        n = len(runs)
        while i < n:
            # Seek the next boundary run.
            while i < n and runs[i][0] != "b":
                i += 1
            # Skip the boundary itself (possibly fragmented by x runs of
            # length >= 2 that smoothing kept).
            while i < n and runs[i][0] == "b":
                i += 1
            # Skip any junk between the boundary and the communication run.
            while i < n and runs[i][0] == "x":
                i += 1
            if i >= n or runs[i][0] != "c":
                continue
            count = runs[i][1]
            i += 1
            bits.append(1 if count > threshold else 0)
        return DecodeReport(
            bits=bits,
            runs=runs,
            n_samples=len(samples),
            n_boundary_runs=sum(1 for label, _c in runs if label == "b"),
            n_unclassified=sum(c for label, c in runs if label == "x"),
        )

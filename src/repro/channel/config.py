"""Channel configuration: (location, state) pairs, Table I, knobs.

A covert-channel scenario is a pair of *(cache location, coherence
state)* combinations: ``csc`` modulates bit values and ``csb`` marks bit
boundaries (Section VII-B).  Locations are always relative to the spy,
which does the timing.  Table I of the paper enumerates the six
practical scenarios along with the trojan thread placement each needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.mem.latency import CLOCK_HZ
from repro.sim.events import AccessPath


class Location(enum.Enum):
    """Cache location relative to the spy's socket."""

    LOCAL = "L"
    REMOTE = "R"


class LineState(enum.Enum):
    """Coherence (or replacement) state the trojan parks the block in.

    Beyond the paper's E/S pair, three further states open extra
    channel families:

    * ``OWNED`` — MOESI dirty-sharer: the trojan dirties the block and a
      second reader pulls it to O, so the owner keeps servicing reads at
      cache-to-cache (E-band) latency (arXiv 2104.08559);
    * ``MRU`` / ``COLD`` — true-LRU replacement state: the trojan either
      keeps the block at the MRU end of its set (survives an eviction
      sweep -> E-band reload) or leaves it cold (swept -> DRAM reload),
      encoding bits in replacement metadata (arXiv 1905.08348).
    """

    EXCLUSIVE = "Excl"
    SHARED = "Shared"
    OWNED = "Owned"
    MRU = "Mru"
    COLD = "Cold"


#: Trojan reader threads needed to hold a block in each state.  One
#: thread keeps a block Exclusive; two sharers make it Shared (Section
#: VI-A).  OWNED needs a dirty writer plus a reader that pulls it to O;
#: MRU needs one thread re-touching the block; COLD is the *absence* of
#: touches, so it needs nobody.
_THREADS_NEEDED = {
    LineState.EXCLUSIVE: 1,
    LineState.SHARED: 2,
    LineState.OWNED: 2,
    LineState.MRU: 1,
    LineState.COLD: 0,
}


@dataclass(frozen=True)
class StatePair:
    """One (location, coherence state) combination."""

    location: Location
    state: LineState

    @property
    def notation(self) -> str:
        """Short name as used in the paper, e.g. ``"RExcl"``."""
        return f"{self.location.value}{self.state.value}"

    @property
    def threads_needed(self) -> int:
        """Trojan worker threads needed to hold the block in this pair."""
        return _THREADS_NEEDED[self.state]

    @property
    def expected_path(self) -> AccessPath:
        """The service path the spy's timed load takes for this pair.

        An O-state or MRU block is serviced by the owning/holding core's
        cache, so the spy sees the E (cache-to-cache) band; a COLD block
        was swept, so the spy's reload comes from DRAM.
        """
        table = {
            (Location.LOCAL, LineState.EXCLUSIVE): AccessPath.LOCAL_EXCL,
            (Location.LOCAL, LineState.SHARED): AccessPath.LOCAL_SHARED,
            (Location.REMOTE, LineState.EXCLUSIVE): AccessPath.REMOTE_EXCL,
            (Location.REMOTE, LineState.SHARED): AccessPath.REMOTE_SHARED,
            (Location.LOCAL, LineState.OWNED): AccessPath.LOCAL_EXCL,
            (Location.REMOTE, LineState.OWNED): AccessPath.REMOTE_EXCL,
            (Location.LOCAL, LineState.MRU): AccessPath.LOCAL_EXCL,
            (Location.REMOTE, LineState.MRU): AccessPath.REMOTE_EXCL,
            (Location.LOCAL, LineState.COLD): AccessPath.DRAM,
            (Location.REMOTE, LineState.COLD): AccessPath.DRAM,
        }
        return table[(self.location, self.state)]


LEXCL = StatePair(Location.LOCAL, LineState.EXCLUSIVE)
LSHARED = StatePair(Location.LOCAL, LineState.SHARED)
REXCL = StatePair(Location.REMOTE, LineState.EXCLUSIVE)
RSHARED = StatePair(Location.REMOTE, LineState.SHARED)
LOWNED = StatePair(Location.LOCAL, LineState.OWNED)
LMRU = StatePair(Location.LOCAL, LineState.MRU)
LCOLD = StatePair(Location.LOCAL, LineState.COLD)

#: The four standard pairs calibration always measures, in this exact
#: order — the RNG draw sequence behind the golden digests depends on
#: it, so extending the channel family must go through
#: :func:`extra_pairs_for` (measured *after* these), never this tuple.
ALL_PAIRS = (LSHARED, LEXCL, RSHARED, REXCL)


def extra_pairs_for(scenario: "Scenario") -> tuple[StatePair, ...]:
    """Non-standard pairs of *scenario* that calibration must also place.

    Returns the scenario's csc/csb pairs outside :data:`ALL_PAIRS`,
    deduplicated in encounter order.  The terminator pair is excluded —
    it only needs to be *out of band*, never decoded, so no band is
    built for it.  COLD needs no placement either: its band is the DRAM
    band, which calibration always measures last.
    """
    extras = []
    for pair in (scenario.csc, scenario.csb):
        if pair in ALL_PAIRS or pair in extras:
            continue
        if pair.state is LineState.COLD:
            continue
        extras.append(pair)
    return tuple(extras)


@dataclass(frozen=True)
class Scenario:
    """One covert-channel scenario: communication + boundary pairs.

    ``terminator`` is an optional third pair the trojan holds after the
    final bit boundary so the spy's end-of-transmission run ('x' labels)
    is observable.  The E/S scenarios do not need one — their quiet
    channel (flushed block -> DRAM) is already out of band — but the LRU
    channel encodes with MRU/COLD, whose quiet state *is* the COLD
    symbol, so a distinct parking state must mark the end.
    """

    csc: StatePair
    csb: StatePair
    terminator: StatePair | None = None

    def __post_init__(self) -> None:
        if self.csc == self.csb:
            raise ConfigError(
                "communication and boundary state pairs must differ"
            )
        if self.terminator in (self.csc, self.csb):
            raise ConfigError(
                "the terminator pair must differ from csc and csb"
            )

    @property
    def name(self) -> str:
        """Paper notation, e.g. ``"RExclc-LSharedb"``."""
        return f"{self.csc.notation}c-{self.csb.notation}b"

    def _pairs(self) -> tuple[StatePair, ...]:
        if self.terminator is None:
            return (self.csc, self.csb)
        return (self.csc, self.csb, self.terminator)

    @property
    def local_threads(self) -> int:
        """Trojan threads needed on the spy's socket."""
        return max(
            (p.threads_needed for p in self._pairs()
             if p.location is Location.LOCAL),
            default=0,
        )

    @property
    def remote_threads(self) -> int:
        """Trojan threads needed on the other socket."""
        return max(
            (p.threads_needed for p in self._pairs()
             if p.location is Location.REMOTE),
            default=0,
        )

    @property
    def total_threads(self) -> int:
        """Total trojan threads (matches Table I's last column)."""
        return self.local_threads + self.remote_threads

    @property
    def needs_remote_socket(self) -> bool:
        """Whether the scenario requires a second socket."""
        return self.remote_threads > 0


#: The six practical scenarios of Table I, in the paper's order.
TABLE_I: tuple[Scenario, ...] = (
    Scenario(csc=LEXCL, csb=LSHARED),
    Scenario(csc=REXCL, csb=RSHARED),
    Scenario(csc=REXCL, csb=LEXCL),
    Scenario(csc=REXCL, csb=LSHARED),
    Scenario(csc=RSHARED, csb=LEXCL),
    Scenario(csc=RSHARED, csb=LSHARED),
)


def scenario_by_name(name: str) -> Scenario:
    """Look up a Table I scenario by its paper notation."""
    for scenario in TABLE_I:
        if scenario.name == name:
            return scenario
    choices = ", ".join(s.name for s in TABLE_I)
    raise ConfigError(
        f"unknown scenario {name!r}; Table I scenarios: {choices}"
    )


@dataclass(frozen=True)
class ProtocolParams:
    """Tunable knobs of the transmission protocol (Algorithms 1 and 2).

    Attributes
    ----------
    c1, c0, cb:
        Slots the trojan holds the block in CSc for a '1', for a '0',
        and in CSb for a bit boundary.
    slot_cycles:
        Total duration of one spy sampling slot (flush + wait + timed
        load).  The spy and trojan agree on this beforehand, as the
        paper's Tc/Tb/Ts values are agreed through self-measurement.
    spy_overhead_cycles:
        Worst-case non-wait portion of a spy slot (flush + timed load +
        fences); the spy waits ``slot_cycles - spy_overhead_cycles``
        after its flush and idles out the remainder of the slot, so its
        sampling period stays locked to ``slot_cycles``.
    reload_divisor:
        While *inactive*, trojan workers poll the shared control state
        every ``slot_cycles / reload_divisor`` cycles.
    worker_spin_cycles:
        Loop cost between back-to-back re-loads while a worker is
        *active* (workers spin, as the real attack's reader threads do).
    end_run:
        Consecutive out-of-band samples after which the spy declares the
        transmission over (the paper's N).
    max_poll_slots:
        Spy gives up polling for a transmission start after this many
        slots (guards the sync phase).
    max_reception_slots:
        Spy gives up mid-reception after this many slots (guards
        against a channel that never goes quiet).
    """

    c1: int = 5
    c0: int = 2
    cb: int = 3
    slot_cycles: float = 1_200.0
    spy_overhead_cycles: float = 430.0
    reload_divisor: float = 10.0
    worker_spin_cycles: float = 24.0
    #: Adaptive worker pacing: after a reload that missed to DRAM (the
    #: worker just re-established the state following a spy flush), the
    #: worker sleeps ``worker_backoff_fraction * slot_cycles`` instead of
    #: spinning.  This phase-locks reloads into the spy's wait window and
    #: is required for eviction-based flushing, where a mid-sweep reload
    #: would re-MRU the block and defeat the eviction.
    adaptive_backoff: bool = False
    worker_backoff_fraction: float = 0.6
    #: Latency above which a worker treats its own reload as a re-fill
    #: after a flush (anything beyond an L1/L2 hit — a coherence service
    #: or a DRAM fill both mean the block had been flushed/evicted).
    worker_refill_floor: float = 60.0
    end_run: int = 8
    max_poll_slots: int = 4_000
    #: Hard cap on reception samples: if the channel never goes quiet
    #: (e.g. a defender's noise injector keeps the block cached), the
    #: spy gives up after this many slots.
    max_reception_slots: int = 30_000

    def __post_init__(self) -> None:
        if min(self.c1, self.c0, self.cb) < 1:
            raise ConfigError("c1, c0 and cb must all be >= 1")
        if self.c1 <= self.c0:
            raise ConfigError("c1 must exceed c0 to be distinguishable")
        if self.slot_cycles <= self.spy_overhead_cycles:
            raise ConfigError("slot_cycles must exceed spy overhead")

    @property
    def spy_wait_cycles(self) -> float:
        """Cycles the spy waits between its flush and its timed load."""
        return self.slot_cycles - self.spy_overhead_cycles

    @property
    def reload_period(self) -> float:
        """Cycles between a trojan worker's re-loads while active."""
        return self.slot_cycles / self.reload_divisor

    @property
    def threshold(self) -> float:
        """The paper's Thold separating '1' runs from '0' runs."""
        return (self.c1 + self.c0) / 2.0

    @property
    def avg_slots_per_bit(self) -> float:
        """Expected slots per transmitted bit (uniform bit mix)."""
        return self.cb + (self.c1 + self.c0) / 2.0

    @property
    def nominal_rate_kbps(self) -> float:
        """Design transmission rate in Kbits/s at the modeled clock."""
        cycles_per_bit = self.avg_slots_per_bit * self.slot_cycles
        return CLOCK_HZ / cycles_per_bit / 1e3

    @classmethod
    def for_eviction_flush(cls) -> "ProtocolParams":
        """Knobs tuned for eviction-based flushing (Section VI-B).

        An eviction sweep (one load per LLC way) costs ~50x a clflush,
        so slots are long and the trojan workers must use adaptive
        backoff: a mid-sweep reload would re-MRU the block and defeat
        the eviction.  Yields a slower (~30 Kbit/s) but clflush-free
        channel.
        """
        return cls(
            slot_cycles=13_000.0,
            spy_overhead_cycles=6_200.0,
            adaptive_backoff=True,
            worker_backoff_fraction=0.5,
        )

    @classmethod
    def for_lru_probe(cls) -> "ProtocolParams":
        """Knobs for the LRU-replacement-state channel.

        The spy's probe is an eviction sweep (there is no clflush-based
        way to query replacement state), so slots are sweep-length as in
        :meth:`for_eviction_flush` — but adaptive backoff stays *off*:
        the MRU worker must keep fighting the sweep to hold the block at
        the MRU end of its set, whereas a backed-off worker would let
        the sweep win and collapse both symbols onto COLD.
        """
        return cls(
            slot_cycles=13_000.0,
            spy_overhead_cycles=6_200.0,
            adaptive_backoff=False,
        )

    def at_rate(self, kbps: float) -> "ProtocolParams":
        """A copy retuned so the nominal rate is *kbps* Kbits/s.

        Only the slot duration changes; the symbol structure (c1/c0/cb)
        is preserved, mirroring the paper's knob 2 (reducing Ts).
        """
        if kbps <= 0:
            raise ConfigError("rate must be positive")
        cycles_per_bit = CLOCK_HZ / (kbps * 1e3)
        slot = cycles_per_bit / self.avg_slots_per_bit
        overhead = min(self.spy_overhead_cycles, slot * 0.6)
        return replace(
            self, slot_cycles=slot, spy_overhead_cycles=overhead
        )

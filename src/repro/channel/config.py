"""Channel configuration: (location, state) pairs, Table I, knobs.

A covert-channel scenario is a pair of *(cache location, coherence
state)* combinations: ``csc`` modulates bit values and ``csb`` marks bit
boundaries (Section VII-B).  Locations are always relative to the spy,
which does the timing.  Table I of the paper enumerates the six
practical scenarios along with the trojan thread placement each needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.mem.latency import CLOCK_HZ
from repro.sim.events import AccessPath


class Location(enum.Enum):
    """Cache location relative to the spy's socket."""

    LOCAL = "L"
    REMOTE = "R"


class LineState(enum.Enum):
    """Coherence state the trojan parks the shared block in."""

    EXCLUSIVE = "Excl"
    SHARED = "Shared"


@dataclass(frozen=True)
class StatePair:
    """One (location, coherence state) combination."""

    location: Location
    state: LineState

    @property
    def notation(self) -> str:
        """Short name as used in the paper, e.g. ``"RExcl"``."""
        return f"{self.location.value}{self.state.value}"

    @property
    def threads_needed(self) -> int:
        """Trojan reader threads needed to hold the block in this pair.

        One thread keeps a block Exclusive; two sharers make it Shared
        (Section VI-A).
        """
        return 1 if self.state is LineState.EXCLUSIVE else 2

    @property
    def expected_path(self) -> AccessPath:
        """The service path the spy's timed load takes for this pair."""
        table = {
            (Location.LOCAL, LineState.EXCLUSIVE): AccessPath.LOCAL_EXCL,
            (Location.LOCAL, LineState.SHARED): AccessPath.LOCAL_SHARED,
            (Location.REMOTE, LineState.EXCLUSIVE): AccessPath.REMOTE_EXCL,
            (Location.REMOTE, LineState.SHARED): AccessPath.REMOTE_SHARED,
        }
        return table[(self.location, self.state)]


LEXCL = StatePair(Location.LOCAL, LineState.EXCLUSIVE)
LSHARED = StatePair(Location.LOCAL, LineState.SHARED)
REXCL = StatePair(Location.REMOTE, LineState.EXCLUSIVE)
RSHARED = StatePair(Location.REMOTE, LineState.SHARED)

ALL_PAIRS = (LSHARED, LEXCL, RSHARED, REXCL)


@dataclass(frozen=True)
class Scenario:
    """One covert-channel scenario: communication + boundary pairs."""

    csc: StatePair
    csb: StatePair

    def __post_init__(self) -> None:
        if self.csc == self.csb:
            raise ConfigError(
                "communication and boundary state pairs must differ"
            )

    @property
    def name(self) -> str:
        """Paper notation, e.g. ``"RExclc-LSharedb"``."""
        return f"{self.csc.notation}c-{self.csb.notation}b"

    @property
    def local_threads(self) -> int:
        """Trojan threads needed on the spy's socket."""
        return max(
            (p.threads_needed for p in (self.csc, self.csb)
             if p.location is Location.LOCAL),
            default=0,
        )

    @property
    def remote_threads(self) -> int:
        """Trojan threads needed on the other socket."""
        return max(
            (p.threads_needed for p in (self.csc, self.csb)
             if p.location is Location.REMOTE),
            default=0,
        )

    @property
    def total_threads(self) -> int:
        """Total trojan threads (matches Table I's last column)."""
        return self.local_threads + self.remote_threads

    @property
    def needs_remote_socket(self) -> bool:
        """Whether the scenario requires a second socket."""
        return self.remote_threads > 0


#: The six practical scenarios of Table I, in the paper's order.
TABLE_I: tuple[Scenario, ...] = (
    Scenario(csc=LEXCL, csb=LSHARED),
    Scenario(csc=REXCL, csb=RSHARED),
    Scenario(csc=REXCL, csb=LEXCL),
    Scenario(csc=REXCL, csb=LSHARED),
    Scenario(csc=RSHARED, csb=LEXCL),
    Scenario(csc=RSHARED, csb=LSHARED),
)


def scenario_by_name(name: str) -> Scenario:
    """Look up a Table I scenario by its paper notation."""
    for scenario in TABLE_I:
        if scenario.name == name:
            return scenario
    raise ConfigError(f"unknown scenario {name!r}; see TABLE_I")


@dataclass(frozen=True)
class ProtocolParams:
    """Tunable knobs of the transmission protocol (Algorithms 1 and 2).

    Attributes
    ----------
    c1, c0, cb:
        Slots the trojan holds the block in CSc for a '1', for a '0',
        and in CSb for a bit boundary.
    slot_cycles:
        Total duration of one spy sampling slot (flush + wait + timed
        load).  The spy and trojan agree on this beforehand, as the
        paper's Tc/Tb/Ts values are agreed through self-measurement.
    spy_overhead_cycles:
        Worst-case non-wait portion of a spy slot (flush + timed load +
        fences); the spy waits ``slot_cycles - spy_overhead_cycles``
        after its flush and idles out the remainder of the slot, so its
        sampling period stays locked to ``slot_cycles``.
    reload_divisor:
        While *inactive*, trojan workers poll the shared control state
        every ``slot_cycles / reload_divisor`` cycles.
    worker_spin_cycles:
        Loop cost between back-to-back re-loads while a worker is
        *active* (workers spin, as the real attack's reader threads do).
    end_run:
        Consecutive out-of-band samples after which the spy declares the
        transmission over (the paper's N).
    max_poll_slots:
        Spy gives up polling for a transmission start after this many
        slots (guards the sync phase).
    max_reception_slots:
        Spy gives up mid-reception after this many slots (guards
        against a channel that never goes quiet).
    """

    c1: int = 5
    c0: int = 2
    cb: int = 3
    slot_cycles: float = 1_200.0
    spy_overhead_cycles: float = 430.0
    reload_divisor: float = 10.0
    worker_spin_cycles: float = 24.0
    #: Adaptive worker pacing: after a reload that missed to DRAM (the
    #: worker just re-established the state following a spy flush), the
    #: worker sleeps ``worker_backoff_fraction * slot_cycles`` instead of
    #: spinning.  This phase-locks reloads into the spy's wait window and
    #: is required for eviction-based flushing, where a mid-sweep reload
    #: would re-MRU the block and defeat the eviction.
    adaptive_backoff: bool = False
    worker_backoff_fraction: float = 0.6
    #: Latency above which a worker treats its own reload as a re-fill
    #: after a flush (anything beyond an L1/L2 hit — a coherence service
    #: or a DRAM fill both mean the block had been flushed/evicted).
    worker_refill_floor: float = 60.0
    end_run: int = 8
    max_poll_slots: int = 4_000
    #: Hard cap on reception samples: if the channel never goes quiet
    #: (e.g. a defender's noise injector keeps the block cached), the
    #: spy gives up after this many slots.
    max_reception_slots: int = 30_000

    def __post_init__(self) -> None:
        if min(self.c1, self.c0, self.cb) < 1:
            raise ConfigError("c1, c0 and cb must all be >= 1")
        if self.c1 <= self.c0:
            raise ConfigError("c1 must exceed c0 to be distinguishable")
        if self.slot_cycles <= self.spy_overhead_cycles:
            raise ConfigError("slot_cycles must exceed spy overhead")

    @property
    def spy_wait_cycles(self) -> float:
        """Cycles the spy waits between its flush and its timed load."""
        return self.slot_cycles - self.spy_overhead_cycles

    @property
    def reload_period(self) -> float:
        """Cycles between a trojan worker's re-loads while active."""
        return self.slot_cycles / self.reload_divisor

    @property
    def threshold(self) -> float:
        """The paper's Thold separating '1' runs from '0' runs."""
        return (self.c1 + self.c0) / 2.0

    @property
    def avg_slots_per_bit(self) -> float:
        """Expected slots per transmitted bit (uniform bit mix)."""
        return self.cb + (self.c1 + self.c0) / 2.0

    @property
    def nominal_rate_kbps(self) -> float:
        """Design transmission rate in Kbits/s at the modeled clock."""
        cycles_per_bit = self.avg_slots_per_bit * self.slot_cycles
        return CLOCK_HZ / cycles_per_bit / 1e3

    @classmethod
    def for_eviction_flush(cls) -> "ProtocolParams":
        """Knobs tuned for eviction-based flushing (Section VI-B).

        An eviction sweep (one load per LLC way) costs ~50x a clflush,
        so slots are long and the trojan workers must use adaptive
        backoff: a mid-sweep reload would re-MRU the block and defeat
        the eviction.  Yields a slower (~30 Kbit/s) but clflush-free
        channel.
        """
        return cls(
            slot_cycles=13_000.0,
            spy_overhead_cycles=6_200.0,
            adaptive_backoff=True,
            worker_backoff_fraction=0.5,
        )

    def at_rate(self, kbps: float) -> "ProtocolParams":
        """A copy retuned so the nominal rate is *kbps* Kbits/s.

        Only the slot duration changes; the symbol structure (c1/c0/cb)
        is preserved, mirroring the paper's knob 2 (reducing Ts).
        """
        if kbps <= 0:
            raise ConfigError("rate must be positive")
        cycles_per_bit = CLOCK_HZ / (kbps * 1e3)
        slot = cycles_per_bit / self.avg_slots_per_bit
        overhead = min(self.spy_overhead_cycles, slot * 0.6)
        return replace(
            self, slot_cycles=slot, spy_overhead_cycles=overhead
        )

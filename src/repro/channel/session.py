"""End-to-end covert-channel sessions: machine + kernel + trojan + spy.

:class:`ChannelSession` assembles the full stack for one Table I
scenario — builds the simulated machine, creates the trojan and spy
processes, force-creates the shared physical page (KSM or explicit
sharing), calibrates the latency bands, and runs transmissions,
returning a :class:`TransmissionResult` with everything the paper's
figures need (reception trace, accuracy, rates).

:class:`SessionBase` carries the stack-assembly plumbing so the
multi-bit symbol channel (:mod:`repro.channel.symbols`) and the
mitigation experiments can reuse it.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

from repro.channel.calibration import (
    DEFAULT_CALIBRATION_SAMPLES,
    LatencyBands,
    calibrate,
    calibrate_memoized,
    calibration_memo_enabled,
    clear_calibration_memo,
)
from repro.channel.config import (
    Location,
    ProtocolParams,
    Scenario,
    extra_pairs_for,
)
from repro.channel.scenarios import ScenarioSpec, scenario_spec_by_name
from repro.channel.decoder import (
    BitDecoder,
    DecodeReport,
    Sample,
    pack_samples,
    unpack_samples,
)
from repro.channel.metrics import Alignment, align_bits, transmission_rate_kbps
from repro.channel.spy import SpyResult, spy_program
from repro.channel.sync import resync_backoff_cycles
from repro.channel.trojan import (
    TrojanControl,
    WorkerRole,
    controller_program,
    worker_program,
    worker_roles,
)
from repro.checkpoint.spec import ProgramSpec, TransmitContext
from repro.checkpoint.segments import SegmentStore, segments_enabled
from repro.errors import ConfigError, SyncTimeoutError
from repro.faults.plan import FaultPlan
from repro.kernel.process import Process
from repro.kernel.syscalls import Kernel
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.hierarchy import Machine, MachineConfig
from repro.obs import MachineTap, RunManifest, TraceRecorder, trace_enabled
from repro.sim.engine import Simulator
from repro.sim.lanes import (
    LaneSimulator,
    lanes_enabled,
    note_bypass,
    session_bypass_reason,
)
from repro.sim.rng import RngStreams


@dataclass
class SessionConfig:
    """Everything needed to stand up one covert-channel session.

    The canonical entry point is ``spec`` — a registered
    :class:`~repro.channel.scenarios.ScenarioSpec` (or its name), which
    resolves the scenario, overlays the machine's protocol/topology and
    fills in channel-family defaults (params, flush method, sharing)
    for every field the caller left at its default.  The legacy
    ``scenario=<Scenario>`` keyword still works but is deprecated.
    """

    #: A :class:`~repro.channel.scenarios.ScenarioSpec`, or a registered
    #: scenario name (``scenario_spec_by_name`` spelling).
    spec: ScenarioSpec | str | None = None
    #: Deprecated: the bare state-pair structure.  Use ``spec``.
    scenario: Scenario | None = None
    params: ProtocolParams = field(default_factory=ProtocolParams)
    seed: int = 0
    #: "ksm" forces page sharing through memory deduplication
    #: (Section IV); "explicit" maps a shared read-only frame directly
    #: (the shared-library model of prior work); "explicit-rw" maps the
    #: frame writable (MAP_SHARED model — required by channels whose
    #: trojan dirties the block, e.g. the O-state family).
    sharing: str = "ksm"
    noise_threads: int = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    calibration_samples: int = DEFAULT_CALIBRATION_SAMPLES
    #: Spy core; local trojan cores are chosen on its socket, remote
    #: cores on the next socket.
    spy_core: int = 0
    #: "clflush" uses the flush instruction; "evict" makes the spy evict
    #: the shared block by loading every way of its LLC set — the
    #: paper's Section VI-B alternative for clflush-less environments.
    #: Evict-based flushing is slow (one load per LLC way), so pair it
    #: with a low-rate ProtocolParams (slot of several thousand cycles).
    flush_method: str = "clflush"
    #: Extra synchronization attempts after the spy times out waiting
    #: for the transmission start (Section VII-A re-synchronization):
    #: each retry idles for an exponentially growing backoff — long
    #: enough for transient disturbances (preemption, KSM churn) to
    #: clear — then replays the whole handshake.  0 restores the old
    #: fail-on-first-timeout behavior.
    resync_attempts: int = 2
    #: Base idle before the first resync attempt (doubles per attempt).
    resync_backoff_cycles: float = 2_000_000.0
    #: Optional :class:`repro.faults.FaultPlan` (or its ``to_json``
    #: dict, so plans ride inside JSON-plain grid params).  Its
    #: simulation-plane events are installed at the first transmission.
    faults: object = None
    #: Reuse the process-local calibration memo
    #: (:func:`repro.channel.calibration.calibrate_memoized`).  The
    #: session still bypasses the memo on its own when calibration is
    #: perturbed (obfuscation installed, simulation-plane fault plans);
    #: set False to force a cold calibration unconditionally.
    calibration_memo: bool = True
    #: Acquire the machine from the process-local warm pool (reset in
    #: place) instead of constructing a fresh one.  Off by default for
    #: directly-built sessions; :func:`execute_point` turns it on so
    #: grid workers amortize topology construction across points.
    reuse_machine: bool = False
    #: Structured tracing (:mod:`repro.obs`).  ``None`` (the default)
    #: defers to the ``REPRO_TRACE`` environment variable — set by the
    #: CLI's ``--trace`` flag — so the decision never enters grid cache
    #: keys; ``True``/``False`` force it per session.  When enabled the
    #: session owns a :class:`~repro.obs.TraceRecorder` with a
    #: :class:`~repro.obs.MachineTap` attached for its whole lifetime.
    trace: bool | None = None

    def __post_init__(self) -> None:
        self._resolve_spec()
        if self.sharing not in ("ksm", "explicit", "explicit-rw"):
            raise ConfigError(f"unknown sharing mode {self.sharing!r}")
        if self.resync_attempts < 0:
            raise ConfigError("resync_attempts must be >= 0")
        if self.flush_method not in ("clflush", "evict"):
            raise ConfigError(f"unknown flush method {self.flush_method!r}")
        if self.scenario is not None:
            if self.scenario.needs_remote_socket and self.machine.n_sockets < 2:
                raise ConfigError(
                    f"scenario {self.scenario.name} needs two sockets"
                )

    def _resolve_spec(self) -> None:
        """Resolve ``spec``/``scenario`` into a concrete configuration.

        A spec overlays only fields the caller left at their defaults
        (machine protocol/topology, params, flush method, sharing), so
        explicit caller choices always win — or, for the machine, raise
        on a genuine conflict (see ``ScenarioSpec.machine_config``).
        """
        spec = self.spec
        if isinstance(spec, str):
            spec = scenario_spec_by_name(spec)
            self.spec = spec
        if isinstance(spec, Scenario):
            # A bare Scenario slid into the new first positional slot.
            warnings.warn(
                "passing a Scenario where SessionConfig expects a "
                "ScenarioSpec is deprecated; pass spec=<ScenarioSpec or "
                "registered name> (or the legacy scenario= keyword)",
                DeprecationWarning,
                stacklevel=4,
            )
            self.scenario = spec
            self.spec = spec = None
        if spec is not None:
            if self.scenario is not None and self.scenario != spec.scenario:
                raise ConfigError(
                    "pass either spec= or scenario=, not conflicting both"
                )
            self.scenario = spec.scenario
            self.machine = spec.machine_config(self.machine)
            if self.params == ProtocolParams():
                self.params = spec.default_params()
            if self.flush_method == "clflush":
                self.flush_method = spec.flush_method
            if self.sharing == "ksm":
                self.sharing = spec.sharing
        elif self.scenario is not None:
            warnings.warn(
                "SessionConfig(scenario=...) is deprecated; pass "
                "spec=<ScenarioSpec or registered scenario name> instead",
                DeprecationWarning,
                stacklevel=4,
            )
        else:
            raise ConfigError(
                "SessionConfig needs spec= (a ScenarioSpec or registered "
                "scenario name) or the legacy scenario= keyword"
            )


@dataclass
class TransmissionResult:
    """Outcome of one payload transmission."""

    scenario_name: str
    sent: list[int]
    received: list[int]
    alignment: Alignment
    samples: list[Sample]
    decode: DecodeReport
    cycles: float
    nominal_rate_kbps: float
    #: Re-synchronizations this transmission needed before succeeding.
    resyncs: int = 0
    #: :class:`~repro.obs.RunManifest` snapshot taken when the result
    #: was assembled (attached whether or not tracing is enabled).
    #: Excluded from equality so manifest-bearing results still compare
    #: equal to pre-manifest ones on the channel-level fields.
    manifest: object = field(default=None, compare=False)

    @property
    def accuracy(self) -> float:
        """Raw-bit accuracy (Figure 8/9's y-axis)."""
        return self.alignment.accuracy

    @property
    def achieved_rate_kbps(self) -> float:
        """Measured raw bit rate over the reception window."""
        return transmission_rate_kbps(len(self.sent), self.cycles)

    # The latency trace dominates the pickled size of a result (IPC
    # payloads and ResultCache entries alike), so it travels in the
    # compact typed-array form and is rebuilt on unpickle.  Legacy
    # pickles carry a plain list, which unpack_samples passes through.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["samples"] = pack_samples(state["samples"])
        return state

    def __setstate__(self, state: dict) -> None:
        state = dict(state)
        state["samples"] = unpack_samples(state["samples"])
        state.setdefault("manifest", None)  # pre-1.3 pickles
        self.__dict__.update(state)


# ----------------------------------------------------------------------
# warm-worker machine pool
# ----------------------------------------------------------------------

#: machine-config fingerprint -> constructed Machine.  Process-local:
#: each pool worker grows its own, and sequential grid points whose
#: structural parameters match reuse the topology via Machine.reset()
#: instead of rebuilding ~10k cache sets per point.
_MACHINE_POOL: dict[str, Machine] = {}


def warm_workers_enabled() -> bool:
    """Whether grid workers may reuse pooled machines across points.

    ``REPRO_WARM_WORKERS=0`` disables the pool globally, restoring the
    build-a-fresh-Machine-per-point behavior.
    """
    return os.environ.get("REPRO_WARM_WORKERS", "1") != "0"


def clear_warm_state() -> int:
    """Drop pooled machines *and* the calibration memo; returns count.

    Test hook / escape hatch: after this, the next session in this
    process pays full construction and calibration cost again.
    """
    count = len(_MACHINE_POOL)
    _MACHINE_POOL.clear()
    clear_calibration_memo()
    return count


def _acquire_machine(config: MachineConfig, rng: RngStreams) -> Machine:
    """A machine for *config*: pooled + reset when one exists, else new.

    Pool identity is the structural fingerprint, so a reused machine has
    byte-equal configuration; ``Machine.reset`` restores it to
    just-constructed state (empty caches/directory/DRAM, zeroed stats,
    fresh jitter stream bound to *rng*).
    """
    key = config.fingerprint()
    machine = _MACHINE_POOL.get(key)
    if machine is None:
        machine = Machine(config, rng)
        _MACHINE_POOL[key] = machine
    else:
        machine.reset(rng)
    return machine


class SessionBase:
    """Shared plumbing: machine, kernel, processes, shared page, bands."""

    def __init__(self, config: SessionConfig):
        self.config = config
        # Tracing is decided once, here: either forced by the config or
        # taken from REPRO_TRACE.  When off, recorder and tap are None
        # and the machine hot path is byte-for-byte the untraced code.
        traced = config.trace if config.trace is not None else trace_enabled()
        self.recorder: TraceRecorder | None = TraceRecorder() if traced else None
        self.tap: MachineTap | None = None
        self.rng = RngStreams(config.seed)
        if config.reuse_machine and warm_workers_enabled():
            self.machine = _acquire_machine(config.machine, self.rng)
        else:
            self.machine = Machine(config.machine, self.rng)
        if self.recorder is not None:
            self.tap = MachineTap(self.machine, self.recorder)
            self.tap.attach()
        # Lane backend selection (see repro.sim.lanes): eligible
        # sessions get a LaneSimulator that drives the known channel
        # programs without generator dispatch, bit-identical to the
        # reference engine; ineligible ones record why and run the
        # unchanged reference path.
        if lanes_enabled():
            lane_reason = session_bypass_reason(config, traced=traced)
            if lane_reason is None:
                self.sim: Simulator = LaneSimulator(self.machine.stats)
            else:
                note_bypass(lane_reason)
                self.sim = Simulator(self.machine.stats)
        else:
            self.sim = Simulator(self.machine.stats)
        # Decided before the first spawn: replay logs must cover every
        # spec-bearing thread from its first op or a checkpoint cannot
        # re-drive it.
        self.sim.checkpointing = segments_enabled()
        #: Optional :class:`repro.checkpoint.SegmentStore` — when set,
        #: transmissions pause at segment boundaries and store resumable
        #: checkpoints (see :meth:`_run_transmission`).
        self.segments: SegmentStore | None = None
        self.kernel = Kernel(self.machine, self.sim, self.rng)
        self.trojan_proc: Process = self.kernel.create_process("trojan")
        self.spy_proc: Process = self.kernel.create_process("spy")
        self._phase("setup", "B", sharing=config.sharing)
        self._setup_sharing()
        self._assign_cores()
        self._phase("setup", "E")
        self._phase("calibrate", "B", samples=config.calibration_samples)
        self.bands: LatencyBands = self._calibrate()
        self._phase("calibrate", "E")
        self.noise_threads = []
        if config.noise_threads:
            self.noise_threads = spawn_kernel_build(
                self.kernel,
                config.noise_threads,
                avoid_cores=set(self.reserved_cores()),
            )
        self.eviction_set: list[int] = []
        if config.flush_method == "evict":
            self.eviction_set = self.kernel.build_eviction_set(
                self.spy_proc, self.spy_va
            )
        self._transmissions = 0
        #: Successful handshake recoveries over the session's lifetime.
        self.resyncs = 0
        self.fault_threads: list = []
        self._faults_installed = False

    # -- setup ----------------------------------------------------------

    def _phase(self, name: str, mark: str, **data) -> None:
        """Emit a channel phase mark (``B``/``E``) at the current clock."""
        if self.recorder is not None:
            self.recorder.emit(
                self.sim.global_clock, "phase", name, {"mark": mark, **data}
            )

    def _setup_sharing(self) -> None:
        if self.config.sharing == "ksm":
            seed = 0xC0FFEE ^ self.config.seed
            self.trojan_va, self.spy_va = self.kernel.setup_ksm_shared_page(
                self.trojan_proc, self.spy_proc, pattern_seed=seed
            )
        elif self.config.sharing == "explicit-rw":
            bases = self.kernel.map_shared_writable(
                [self.trojan_proc, self.spy_proc]
            )
            self.trojan_va, self.spy_va = bases[0], bases[1]
        else:
            bases = self.kernel.map_shared_readonly(
                [self.trojan_proc, self.spy_proc]
            )
            self.trojan_va, self.spy_va = bases[0], bases[1]
        if self.trojan_proc.translate(self.trojan_va) != self.spy_proc.translate(
            self.spy_va
        ):
            raise ConfigError("shared-page setup failed: different frames")

    def _worker_demand(self) -> tuple[int, int]:
        scenario = self.config.scenario
        return scenario.local_threads, scenario.remote_threads

    def _assign_cores(self) -> None:
        cfg = self.config
        n_local, n_remote = self._worker_demand()
        per_socket = cfg.machine.cores_per_socket
        spy_socket = cfg.spy_core // per_socket
        local_pool = [
            c
            for c in range(spy_socket * per_socket, (spy_socket + 1) * per_socket)
            if c != cfg.spy_core
        ]
        remote_socket = (spy_socket + 1) % cfg.machine.n_sockets
        remote_pool = list(
            range(remote_socket * per_socket, (remote_socket + 1) * per_socket)
        )
        if n_local > len(local_pool):
            raise ConfigError("not enough local cores for the trojan")
        if n_remote > len(remote_pool) or (
            n_remote and remote_socket == spy_socket
        ):
            raise ConfigError("not enough remote cores for the trojan")
        self.local_cores = local_pool[: max(2, n_local)]
        if cfg.machine.n_sockets < 2:
            self.remote_cores = []
        else:
            self.remote_cores = remote_pool[: max(2, n_remote)]

    def reserved_cores(self) -> list[int]:
        """Cores the trojan/spy occupy (noise workloads avoid these)."""
        return [self.config.spy_core, *self.local_cores, *self.remote_cores]

    def _calibration_key(self) -> tuple:
        """Memo key: everything that shapes the calibration pass.

        The machine fingerprint pins the topology and latency model, the
        root seed pins every RNG stream, and sharing mode is included
        because it decides how much pre-calibration work (KSM merge vs
        explicit map) has already consumed the kernel's streams.
        """
        cfg = self.config
        return (
            cfg.machine.fingerprint(),
            cfg.seed,
            cfg.sharing,
            cfg.calibration_samples,
            cfg.spy_core,
            self.spy_proc.translate(self.spy_va),
            tuple(p.notation for p in self._extra_pairs()),
        )

    def _extra_pairs(self):
        """Non-standard pairs this session's scenario needs calibrated."""
        return extra_pairs_for(self.config.scenario)

    def _calibration_memo_usable(self) -> bool:
        """Whether this session's calibration is memo-safe.

        Perturbed calibrations must run cold: an installed obfuscation
        policy changes the measured latencies, and fault-injected
        sessions (simulation-plane events) opt out wholesale so a
        disturbed pass can neither poison the memo nor mask a fault's
        interaction with calibration.
        """
        cfg = self.config
        if not cfg.calibration_memo or not calibration_memo_enabled():
            return False
        if self.machine.obfuscation is not None:
            return False
        plan = FaultPlan.from_json(cfg.faults)
        return not plan.simulation_events

    def _calibrate(self) -> LatencyBands:
        paddr = self.spy_proc.translate(self.spy_va)
        extra_pairs = self._extra_pairs()
        if self._calibration_memo_usable():
            return calibrate_memoized(
                self.machine,
                self._calibration_key(),
                paddr=paddr,
                samples=self.config.calibration_samples,
                spy_core=self.config.spy_core,
                extra_pairs=extra_pairs,
            )
        bands, _raw = calibrate(
            self.machine,
            paddr=paddr,
            samples=self.config.calibration_samples,
            spy_core=self.config.spy_core,
            extra_pairs=extra_pairs,
        )
        return bands

    def spawn_workers(
        self, roles: list[WorkerRole], control: TrojanControl, tag: int
    ) -> None:
        """Spawn trojan reader threads on the cores their roles demand."""
        for role in roles:
            pool = (
                self.local_cores
                if role.location is Location.LOCAL
                else self.remote_cores
            )
            self.kernel.spawn(
                self.trojan_proc,
                f"trojan-{role.location.value}{role.index}-{tag}",
                worker_program(control, role, self.trojan_va, self.config.params),
                core_id=pool[role.index],
                daemon=True,
                spec=ProgramSpec(
                    "repro.channel.trojan:worker_program",
                    (control, role, self.trojan_va, self.config.params),
                ),
            )

    def spawn_controller(self, program, tag: int, spec: ProgramSpec | None = None):
        """Spawn the trojan's orchestration thread.

        The controller only flushes at transitions and waits out slots;
        it is modeled as an unscheduled thread of the trojan process so
        it does not distort a worker core's timing.
        """
        return self.sim.spawn(
            name=f"trojan-ctl-{tag}",
            program=program,
            core_id=self.local_cores[0],
            executor=self.kernel._execute,
            daemon=False,
            process=self.trojan_proc,
            spec=spec,
        )

    def next_tag(self) -> int:
        """A unique per-transmission tag for thread names."""
        tag = self._transmissions
        self._transmissions += 1
        return tag

    def install_faults(self) -> None:
        """Install the configured simulation-plane fault plan (once).

        Deferred to the first transmission so the fault windows —
        expressed relative to the install-time clock — land inside the
        traffic they are meant to disturb, not the calibration phase.
        """
        if self._faults_installed:
            return
        self._faults_installed = True
        plan = FaultPlan.from_json(self.config.faults)
        if plan.simulation_events:
            from repro.faults.simulation import install_simulation_faults

            self.fault_threads = install_simulation_faults(self, plan)

    def _reap_attempt(self, tag: int) -> None:
        """Kill every surviving thread of one transmission attempt.

        After a failed handshake the attempt's workers (daemons) and
        controller (non-daemon, still mid-payload) are abandoned; a
        retry spawns a fresh cohort under a new tag, so the stale one
        must not keep running — or keep the engine alive — underneath
        it.
        """
        suffix = f"-{tag}"
        for thread in self.sim.threads:
            # Only the attempt's own cohort: workers (trojan-L0-<tag>),
            # controller (trojan-ctl-<tag>) and spy (spy-<tag>).  Noise
            # workloads, KSM, and fault threads use other prefixes and
            # must survive the reap.
            if (
                thread.name.startswith(("trojan-", "spy-"))
                and thread.name.endswith(suffix)
                and not thread.done
            ):
                thread.kill()

    def idle(self, cycles: float) -> None:
        """Advance simulated time with the channel quiet.

        Background daemons (noise workloads, KSM) keep running; the
        trojan and spy do nothing.  Used for retransmission backoff.
        """

        def program(cpu):
            yield from cpu.delay(cycles)

        self.sim.spawn(
            name=f"idle-{self.next_tag()}",
            program=program,
            core_id=self.config.spy_core,
            executor=self.kernel._execute,
            daemon=False,
        )
        self.sim.run()

    # -- segmented execution --------------------------------------------

    def _segmentable(self) -> bool:
        """Whether the in-flight transmission may be checkpointed.

        Tracing sessions and obfuscated machines are excluded (recorder
        buffers and wrapped caches do not snapshot), and every live
        thread must carry a :class:`~repro.checkpoint.ProgramSpec` —
        simulation-plane fault injectors are spec-less by design, so a
        fault-disturbed transmission silently falls back to the
        unsegmented path rather than checkpointing unrestorable state.
        """
        if self.recorder is not None or self.machine.obfuscation is not None:
            return False
        return all(
            thread.program_spec is not None
            for thread in self.sim.live_run_order()
        )

    def _run_transmission(self, ctx: TransmitContext) -> None:
        """Drive one attempt's engine run, segmenting when configured.

        Unsegmented (no store, or :meth:`_segmentable` says no): one
        plain ``sim.run()`` — byte-for-byte today's behavior.  Segmented:
        run to each segment boundary, store a resumable checkpoint, and
        continue; the pauses are invisible to the simulation.
        """
        store = self.segments
        if store is None or not self._segmentable():
            self.sim.run()
            return
        while True:
            boundary = store.next_boundary(self.sim.global_clock)
            paused = self.sim.run(pause_at=boundary)
            if not paused:
                return
            store.record_segment(self, ctx)


class ChannelSession(SessionBase):
    """One binary trojan/spy channel on one simulated machine.

    Reusable: call :meth:`transmit` repeatedly; simulated time keeps
    advancing on the same machine and shared page.
    """

    def transmit(
        self,
        payload: list[int],
        _resume: TransmitContext | None = None,
        _label: str = "main",
    ) -> TransmissionResult:
        """Send *payload* from the trojan to the spy; decode and score.

        If the spy times out waiting for the transmission start (a lost
        handshake — forced preemption, a severed shared page, ...), the
        attempt's threads are reaped, the pair idles for an exponential
        backoff, and the whole handshake replays, up to
        ``config.resync_attempts`` retries.  Only then does
        :class:`~repro.errors.SyncTimeoutError` propagate.

        ``_resume``/``_label`` are the checkpoint plane's hooks
        (:func:`repro.checkpoint.restore` / :func:`execute_point`): a
        restored :class:`~repro.checkpoint.TransmitContext` re-enters
        the attempt loop mid-attempt — same tag, same live thread
        cohort, no backoff — and a failed resumed attempt retries
        exactly as the uninterrupted run would have.
        """
        cfg = self.config
        if any(bit not in (0, 1) for bit in payload):
            raise ConfigError("payload must be a list of 0/1 ints")
        self.install_faults()
        first_attempt = _resume.attempt if _resume is not None else 0
        resume = _resume

        self._phase("transmit", "B", bits=len(payload))
        try:
            for attempt in range(first_attempt, cfg.resync_attempts + 1):
                # A resumed attempt is consumed exactly once; if it
                # fails, the next iteration retries cold — with the same
                # tag sequence as an uninterrupted run, because the
                # restored ``_transmissions`` counter already advanced
                # past the resumed tag.
                resume, resuming = None, resume
                if attempt and resuming is None:
                    # Back off long enough for the disturbance that broke
                    # the handshake to clear, then resynchronize from
                    # scratch with a fresh thread cohort.
                    self._phase("resync", "B", attempt=attempt)
                    self.idle(resync_backoff_cycles(
                        attempt, base=cfg.resync_backoff_cycles
                    ))
                    self._phase("resync", "E")
                tag = resuming.tag if resuming is not None else self.next_tag()
                self._phase("attempt", "B", tag=tag)
                try:
                    result = self._transmit_once(
                        payload, tag, attempt=attempt, label=_label,
                        _resume=resuming,
                    )
                except SyncTimeoutError:
                    self._phase("attempt", "E", outcome="sync-timeout")
                    self._reap_attempt(tag)
                    if isinstance(self.sim, LaneSimulator):
                        # A lost handshake means thread interleaving the
                        # drivers cannot retrace; the session finishes on
                        # the reference path.
                        self.sim.lane_stand_down("resync")
                    if attempt >= cfg.resync_attempts:
                        raise
                    self.resyncs += 1
                    continue
                self._phase("attempt", "E", outcome="ok")
                return TransmissionResult(
                    scenario_name=result.scenario_name,
                    sent=result.sent,
                    received=result.received,
                    alignment=result.alignment,
                    samples=result.samples,
                    decode=result.decode,
                    cycles=result.cycles,
                    nominal_rate_kbps=result.nominal_rate_kbps,
                    resyncs=attempt,
                    manifest=RunManifest.capture(self, resyncs=attempt),
                )
            raise AssertionError("unreachable")  # pragma: no cover
        finally:
            self._phase("transmit", "E")

    def _transmit_once(
        self,
        payload: list[int],
        tag: int,
        attempt: int = 0,
        label: str = "main",
        _resume: TransmitContext | None = None,
    ) -> TransmissionResult:
        """One handshake + payload attempt (no retry logic).

        With ``_resume``, the attempt's thread cohort already lives in
        the (restored) simulator — spawn nothing, pick the shared
        control/decoder/spy-result objects out of the context, and just
        drive the engine to completion.
        """
        cfg = self.config
        if _resume is not None:
            ctx = _resume
            control = ctx.control
            decoder = ctx.decoder
            spy_result = ctx.spy_result
            controller_thread = self.sim._by_name.get(f"trojan-ctl-{tag}")
        else:
            control = TrojanControl()
            decoder = BitDecoder(self.bands, cfg.scenario, cfg.params)
            spy_result = SpyResult()
            bits = list(payload)
            ctx = TransmitContext(
                payload=bits,
                tag=tag,
                attempt=attempt,
                label=label,
                control=control,
                decoder=decoder,
                spy_result=spy_result,
            )
            self.spawn_workers(worker_roles(cfg.scenario), control, tag)
            controller_thread = self.spawn_controller(
                controller_program(
                    control, cfg.scenario, cfg.params, self.trojan_va, bits
                ),
                tag,
                spec=ProgramSpec(
                    "repro.channel.trojan:controller_program",
                    (control, cfg.scenario, cfg.params, self.trojan_va, bits),
                ),
            )
            eviction = (
                self.eviction_set if cfg.flush_method == "evict" else None
            )
            self.kernel.spawn(
                self.spy_proc,
                f"spy-{tag}",
                spy_program(spy_result, decoder, cfg.params, self.spy_va,
                            eviction_set=eviction),
                core_id=cfg.spy_core,
                daemon=False,
                spec=ProgramSpec(
                    "repro.channel.spy:spy_program",
                    (spy_result, decoder, cfg.params, self.spy_va),
                    {"eviction_set": eviction},
                ),
            )
        self._run_transmission(ctx)
        if (
            controller_thread is not None
            and controller_thread.failure is not None
        ):  # pragma: no cover
            raise controller_thread.failure

        self._phase("decode", "B", samples=len(spy_result.samples))
        report = decoder.decode(spy_result.samples)
        alignment = align_bits(list(payload), report.bits)
        self._phase("decode", "E", bits=len(report.bits))
        return TransmissionResult(
            scenario_name=cfg.scenario.name,
            sent=list(payload),
            received=report.bits,
            alignment=alignment,
            samples=list(spy_result.samples),
            decode=report,
            cycles=spy_result.reception_cycles,
            nominal_rate_kbps=cfg.params.nominal_rate_kbps,
        )


def resolve_spec(
    scenario: Scenario | str | None = None,
    spec: ScenarioSpec | str | None = None,
    protocol: str | None = None,
) -> ScenarioSpec:
    """Resolve grid-point inputs into one concrete :class:`ScenarioSpec`.

    Accepts the modern ``spec`` (object or registry name), the legacy
    ``scenario`` (Table I name string or bare Scenario object — wrapped
    into an ad-hoc spec without deprecation noise, since drivers funnel
    every grid point through here), and an optional ``protocol``
    override from the uniform ``--protocol`` flag.
    """
    from dataclasses import replace

    if spec is not None:
        if isinstance(spec, str):
            spec = scenario_spec_by_name(spec)
        if protocol is not None and protocol != spec.protocol:
            raise ConfigError(
                f"spec {spec.name!r} pins protocol {spec.protocol!r}; "
                f"cannot override with {protocol!r}"
            )
        return spec
    if scenario is None:
        raise ConfigError("execute_point needs spec= or scenario=")
    if isinstance(scenario, str):
        base = scenario_spec_by_name(scenario)
    else:
        base = ScenarioSpec(name=scenario.name, scenario=scenario)
    if protocol is not None and protocol != base.protocol:
        base = replace(base, protocol=protocol)
    return base


def execute_point(
    *,
    scenario: Scenario | str | None = None,
    payload: list[int],
    spec: ScenarioSpec | str | None = None,
    protocol: str | None = None,
    rate_kbps: float | None = None,
    seed: int = 0,
    noise_threads: int = 0,
    warmup_bits: int = 0,
    calibration_samples: int | None = None,
    params: ProtocolParams | None = None,
    machine: MachineConfig | None = None,
    flush_method: str = "clflush",
    faults: dict | None = None,
    resync_attempts: int | None = None,
) -> TransmissionResult:
    """Grid-point entry: one self-contained transmission from plain data.

    This is the execution boundary the :mod:`repro.runner` subsystem
    ships to worker processes, so every argument is either JSON-plain or
    optional — the scenario may be its Table I name string, and the full
    machine/kernel/session stack is constructed *inside* the call (a
    worker never receives live simulator state).  ``warmup_bits``
    transmits a payload prefix first so noise workloads reach the
    steady-state regime the paper measures in (Figure 9).  ``faults``
    is a :meth:`repro.faults.FaultPlan.to_json` dict whose
    simulation-plane events are injected into the transmission.

    Grid points executed back-to-back in one worker process reuse the
    constructed machine (``reuse_machine=True`` + the process-local
    pool) and the calibration memo; both are bit-identical to the cold
    path and can be disabled with ``REPRO_WARM_WORKERS=0`` /
    ``REPRO_CALIBRATION_MEMO=0``.

    With segmented execution on (``REPRO_SEGMENT_CYCLES``), the session
    stores resumable checkpoints at segment boundaries under this
    point's content identity; a re-invocation of the same point (the
    runner's crash-retry path, a re-run CLI) resumes from the newest
    stored segment and produces a bit-identical result.
    """
    point_kwargs = {
        "scenario": scenario, "payload": payload, "spec": spec,
        "protocol": protocol, "rate_kbps": rate_kbps, "seed": seed,
        "noise_threads": noise_threads, "warmup_bits": warmup_bits,
        "calibration_samples": calibration_samples, "params": params,
        "machine": machine, "flush_method": flush_method,
        "faults": faults, "resync_attempts": resync_attempts,
    }
    resolved = resolve_spec(scenario, spec, protocol)
    if params is None:
        params = resolved.default_params()
    if rate_kbps is not None:
        params = params.at_rate(rate_kbps)
    store = SegmentStore.for_point(point_kwargs)
    if store is not None:
        blob = store.latest()
        if blob is not None:
            from repro.checkpoint.core import restore

            session, ctx = restore(blob)
            session.segments = store
            result = session.transmit(
                ctx.payload, _resume=ctx, _label=ctx.label
            )
            if ctx.label == "warmup":
                # The checkpoint fell inside the warmup prefix; finish
                # it (result discarded, as in the cold path) and run the
                # main transmission from the recovered state.
                return session.transmit(payload)
            return result
    kwargs: dict = {}
    if calibration_samples is not None:
        kwargs["calibration_samples"] = calibration_samples
    if resync_attempts is not None:
        kwargs["resync_attempts"] = resync_attempts
    session = ChannelSession(SessionConfig(
        spec=resolved,
        params=params,
        seed=seed,
        noise_threads=noise_threads,
        machine=machine if machine is not None else MachineConfig(),
        flush_method=flush_method,
        faults=faults,
        reuse_machine=True,
        **kwargs,
    ))
    session.segments = store
    if warmup_bits:
        session.transmit(payload[:warmup_bits], _label="warmup")
    return session.transmit(payload)


def run_transmission(
    scenario: Scenario | ScenarioSpec | str | None = None,
    payload: list[int] | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    noise_threads: int = 0,
    sharing: str | None = None,
    machine: MachineConfig | None = None,
    *,
    spec: ScenarioSpec | str | None = None,
) -> TransmissionResult:
    """One-shot convenience: build a session and send one payload.

    Prefer ``spec=`` (a :class:`~repro.channel.scenarios.ScenarioSpec`
    or registered name); a spec/name in the first positional slot is
    accepted too.  Passing a bare :class:`Scenario` object is deprecated
    — it carries no protocol/topology information.
    """
    if payload is None:
        raise ConfigError("run_transmission needs a payload")
    if spec is None:
        if isinstance(scenario, (str, ScenarioSpec)):
            spec = scenario
        elif isinstance(scenario, Scenario):
            warnings.warn(
                "run_transmission(scenario=<Scenario>) is deprecated; "
                "pass spec=<ScenarioSpec or registered scenario name>",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = ScenarioSpec(name=scenario.name, scenario=scenario)
        else:
            raise ConfigError("run_transmission needs spec= or scenario=")
    kwargs: dict = {}
    if params is not None:
        kwargs["params"] = params
    if sharing is not None:
        kwargs["sharing"] = sharing
    config = SessionConfig(
        spec=spec,
        seed=seed,
        noise_threads=noise_threads,
        machine=machine if machine is not None else MachineConfig(),
        **kwargs,
    )
    session = ChannelSession(config)
    return session.transmit(payload)

"""The paper's core contribution: coherence-state covert channels.

Public surface:

* :data:`~repro.channel.config.TABLE_I` and
  :class:`~repro.channel.config.Scenario` — the six attack scenarios.
* :class:`~repro.channel.scenarios.ScenarioSpec` /
  :data:`~repro.channel.scenarios.SCENARIOS` — the typed scenario
  registry spanning (protocol x channel family x topology).
* :class:`~repro.channel.session.ChannelSession` /
  :func:`~repro.channel.session.run_transmission` — end-to-end binary
  transmission (Algorithms 1 and 2).
* :class:`~repro.channel.symbols.MultiBitSession` — 2-bit symbol channel.
* :class:`~repro.channel.ecc.ReliableChannel` — parity + NACK transfer.
* :func:`~repro.channel.calibration.calibrate` — latency-band
  measurement (Figure 2).
* :func:`~repro.channel.sync.run_synchronization` — the pre-transmission
  handshake.
"""

from repro.channel.calibration import (
    Band,
    LatencyBands,
    calibrate,
    measure_dram,
    measure_pair,
)
from repro.channel.config import (
    ALL_PAIRS,
    LCOLD,
    LEXCL,
    LMRU,
    LOWNED,
    LSHARED,
    REXCL,
    RSHARED,
    TABLE_I,
    LineState,
    Location,
    ProtocolParams,
    Scenario,
    StatePair,
    scenario_by_name,
)
from repro.channel.scenarios import (
    CHANNEL_FAMILIES,
    MATRIX_COLS,
    MATRIX_ROWS,
    SCENARIOS,
    TOPOLOGIES,
    ScenarioSpec,
    matrix_cell,
    scenario_spec_by_name,
)
from repro.channel.decoder import BitDecoder, DecodeReport, Sample
from repro.channel.eviction import (
    EvictionSetDiscovery,
)
from repro.channel.ecc import (
    PACKET_DATA_BYTES,
    ReliableChannel,
    ReliableTransferResult,
    check_packet,
    encode_packet,
)
from repro.channel.metrics import (
    Alignment,
    align_bits,
    goodput_kbps,
    raw_bit_accuracy,
    transmission_rate_kbps,
)
from repro.channel.session import (
    ChannelSession,
    SessionBase,
    SessionConfig,
    TransmissionResult,
    execute_point,
    resolve_spec,
    run_transmission,
)
from repro.channel.spy import SpyResult, eviction_flusher, spy_program
from repro.channel.symbols import (
    BITS_PER_SYMBOL,
    SYMBOL_PAIRS,
    MultiBitSession,
    SymbolDecoder,
    SymbolParams,
    SymbolTransmissionResult,
    bits_to_symbols,
    symbols_to_bits,
)
from repro.channel.sync import SyncParams, SyncResult, run_synchronization
from repro.channel.trojan import (
    TrojanControl,
    WorkerRole,
    controller_program,
    worker_program,
    worker_roles,
)

__all__ = [
    "ALL_PAIRS",
    "Alignment",
    "BITS_PER_SYMBOL",
    "Band",
    "BitDecoder",
    "ChannelSession",
    "DecodeReport",
    "EvictionSetDiscovery",
    "LEXCL",
    "LSHARED",
    "LatencyBands",
    "LineState",
    "Location",
    "MultiBitSession",
    "CHANNEL_FAMILIES",
    "LCOLD",
    "LMRU",
    "LOWNED",
    "MATRIX_COLS",
    "MATRIX_ROWS",
    "PACKET_DATA_BYTES",
    "ProtocolParams",
    "REXCL",
    "RSHARED",
    "ReliableChannel",
    "ReliableTransferResult",
    "SCENARIOS",
    "SYMBOL_PAIRS",
    "Sample",
    "Scenario",
    "ScenarioSpec",
    "SessionBase",
    "SessionConfig",
    "SpyResult",
    "StatePair",
    "SymbolDecoder",
    "SymbolParams",
    "SymbolTransmissionResult",
    "SyncParams",
    "SyncResult",
    "TABLE_I",
    "TOPOLOGIES",
    "TransmissionResult",
    "TrojanControl",
    "WorkerRole",
    "align_bits",
    "bits_to_symbols",
    "calibrate",
    "check_packet",
    "eviction_flusher",
    "controller_program",
    "encode_packet",
    "goodput_kbps",
    "matrix_cell",
    "measure_dram",
    "measure_pair",
    "raw_bit_accuracy",
    "resolve_spec",
    "run_synchronization",
    "execute_point",
    "run_transmission",
    "scenario_by_name",
    "scenario_spec_by_name",
    "spy_program",
    "symbols_to_bits",
    "transmission_rate_kbps",
    "worker_program",
    "worker_roles",
]

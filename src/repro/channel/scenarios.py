"""The scenario matrix: typed specs over (protocol, channel, topology).

The paper's channel family (E/S states under snoop MESI) is one cell of
a larger space: protocol variants (MESI/MESIF/MOESI), channel families
(E-S, the MOESI dirty-sharer O-state of arXiv 2104.08559, the LRU
replacement-state channel of arXiv 1905.08348) and coherence topologies
(snoop vs home-node directory).  :class:`ScenarioSpec` names one cell
and carries everything a session needs to stand it up: the low-level
:class:`~repro.channel.config.Scenario` (state pairs), the machine
protocol/topology, the flush primitive and the page-sharing mode.

:data:`SCENARIOS` is the registry — the channel-side mirror of
:data:`repro.mem.protocols.PROTOCOLS` and ``experiments.REGISTRY`` —
and :func:`matrix_cell` lays the registered specs out as the
(protocol x channel) grid the ``leaderboard`` driver reports on.

Not every cell exists:

* MESI/MESIF x O-state is *deterministically dead*: those protocols
  write a dirty owner back and demote it to S when it services a read,
  so the O-channel's two symbols collapse onto the S band and
  calibration refuses the overlapping pair (a
  :class:`~repro.errors.CalibrationError`).  The dead cells are part of
  the result — they are the paper-style argument that the O channel is
  a MOESI-specific leak.
* directory x LRU is undefined: the home directory is not a set-assoc
  structure, so an eviction sweep cannot probe its replacement state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.config import (
    LCOLD,
    LEXCL,
    LMRU,
    LOWNED,
    LSHARED,
    TABLE_I,
    ProtocolParams,
    Scenario,
)
from repro.errors import ConfigError
from repro.mem.hierarchy import MachineConfig
from repro.mem.protocols import PROTOCOLS

#: Channel families a spec may belong to.
CHANNEL_FAMILIES = ("es", "ostate", "lru")

#: Coherence topologies (mirrors ``MachineConfig.coherence``).
TOPOLOGIES = ("snoop", "directory")

#: Machine-config defaults a spec is allowed to override.  A spec only
#: overlays a field the caller left at its class default; an explicit,
#: conflicting caller choice is an error, so ablation sweeps that pin
#: their own protocol can never be silently clobbered.
_PROTOCOL_DEFAULT = "mesi"
_COHERENCE_DEFAULT = "snoop"


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the scenario matrix.

    Attributes
    ----------
    name:
        Registry key (also the ``--scenario`` spelling).
    scenario:
        The (csc, csb[, terminator]) state-pair structure.
    protocol:
        Coherence protocol the machine must run (a
        :data:`~repro.mem.protocols.PROTOCOLS` key).
    channel:
        Channel family: ``"es"``, ``"ostate"`` or ``"lru"``.
    topology:
        ``"snoop"`` or ``"directory"`` (home-node backend).
    flush_method:
        Spy flush primitive: ``"clflush"`` or ``"evict"``.
    sharing:
        Page-sharing mode the session needs (``"ksm"``, ``"explicit"``
        or ``"explicit-rw"`` — the O-state channel must be able to
        dirty the shared block).
    summary:
        One-line description for listings.
    """

    name: str
    scenario: Scenario
    protocol: str = "mesi"
    channel: str = "es"
    topology: str = "snoop"
    flush_method: str = "clflush"
    sharing: str = "ksm"
    summary: str = ""

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; registered "
                f"protocols: {', '.join(sorted(PROTOCOLS))}"
            )
        if self.channel not in CHANNEL_FAMILIES:
            raise ConfigError(
                f"unknown channel family {self.channel!r}; expected one "
                f"of: {', '.join(CHANNEL_FAMILIES)}"
            )
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; expected one of: "
                f"{', '.join(TOPOLOGIES)}"
            )
        if self.flush_method not in ("clflush", "evict"):
            raise ConfigError(
                f"unknown flush method {self.flush_method!r}"
            )
        if self.sharing not in ("ksm", "explicit", "explicit-rw"):
            raise ConfigError(f"unknown sharing mode {self.sharing!r}")

    @property
    def coherence(self) -> str:
        """The ``MachineConfig.coherence`` value this spec requires."""
        return "directory" if self.topology == "directory" else "snoop"

    def machine_config(self, base: MachineConfig | None = None) -> MachineConfig:
        """*base* with this spec's protocol/topology overlaid.

        Only fields the caller left at their class defaults are
        overridden; a base config that already pins a *different*
        protocol or coherence backend conflicts with the spec and
        raises, instead of one silently winning.
        """
        base = base if base is not None else MachineConfig()
        updates: dict = {}
        if base.protocol != self.protocol:
            if base.protocol != _PROTOCOL_DEFAULT:
                raise ConfigError(
                    f"machine pins protocol {base.protocol!r} but spec "
                    f"{self.name!r} requires {self.protocol!r}"
                )
            updates["protocol"] = self.protocol
        if base.coherence != self.coherence:
            if base.coherence != _COHERENCE_DEFAULT:
                raise ConfigError(
                    f"machine pins coherence {base.coherence!r} but spec "
                    f"{self.name!r} requires {self.coherence!r}"
                )
            updates["coherence"] = self.coherence
        return base.with_updates(**updates) if updates else base

    def default_params(self) -> ProtocolParams:
        """Protocol knobs suited to this spec's flush/probe primitive."""
        if self.channel == "lru":
            return ProtocolParams.for_lru_probe()
        if self.flush_method == "evict":
            return ProtocolParams.for_eviction_flush()
        return ProtocolParams()


def _table_i_specs() -> dict[str, ScenarioSpec]:
    """The six Table I scenarios, registered under their paper names."""
    placements = {
        "LExclc-LSharedb": "same-socket trojan; the paper's fastest channel",
        "RExclc-RSharedb": "cross-socket trojan, both pairs remote",
        "RExclc-LExclb": "cross-socket communication, local boundary",
        "RExclc-LSharedb": "cross-socket communication, shared boundary",
        "RSharedc-LExclb": "remote-shared communication, exclusive boundary",
        "RSharedc-LSharedb": "remote-shared communication, shared boundary",
    }
    return {
        s.name: ScenarioSpec(
            name=s.name,
            scenario=s,
            summary=f"Table I: {placements.get(s.name, s.name)}",
        )
        for s in TABLE_I
    }


#: Scenario structure shared by every E-S matrix cell (Table I row 1).
_ES = Scenario(csc=LEXCL, csb=LSHARED)
#: O-state cells: communicate via the dirty-sharer O state, bound by S.
_OSTATE = Scenario(csc=LOWNED, csb=LSHARED)
#: LRU cells: MRU-vs-swept encoding probed by eviction sweeps; the
#: terminator parks B in S after the last bit so the spy's
#: end-of-transmission run is observable (COLD is the quiet state).
_LRU = Scenario(csc=LMRU, csb=LCOLD, terminator=LSHARED)


def _matrix_specs() -> dict[str, ScenarioSpec]:
    specs: dict[str, ScenarioSpec] = {}
    for protocol in sorted(PROTOCOLS):
        specs[f"{protocol}-es"] = ScenarioSpec(
            name=f"{protocol}-es",
            scenario=_ES,
            protocol=protocol,
            channel="es",
            summary=f"E/S channel on snoop {protocol.upper()}",
        )
        specs[f"{protocol}-ostate"] = ScenarioSpec(
            name=f"{protocol}-ostate",
            scenario=_OSTATE,
            protocol=protocol,
            channel="ostate",
            sharing="explicit-rw",
            summary=(
                f"O-state (dirty-sharer) channel on snoop "
                f"{protocol.upper()}"
                + ("" if protocol == "moesi"
                   else " — expected dead (no O state; bands collapse)")
            ),
        )
        specs[f"{protocol}-lru"] = ScenarioSpec(
            name=f"{protocol}-lru",
            scenario=_LRU,
            protocol=protocol,
            channel="lru",
            flush_method="evict",
            summary=f"LRU replacement-state channel on snoop {protocol.upper()}",
        )
    specs["dir-es"] = ScenarioSpec(
        name="dir-es",
        scenario=_ES,
        protocol="mesi",
        channel="es",
        topology="directory",
        summary="E/S channel through the home-node directory backend",
    )
    specs["dir-ostate"] = ScenarioSpec(
        name="dir-ostate",
        scenario=_OSTATE,
        protocol="moesi",
        channel="ostate",
        topology="directory",
        sharing="explicit-rw",
        summary="O-state channel through the home-node directory backend",
    )
    return specs


#: The scenario registry: name -> spec.  Table I names map to the
#: paper's six scenarios (snoop MESI, KSM sharing, clflush) so existing
#: ``--scenario`` spellings resolve unchanged; the matrix names cover
#: the (protocol x channel) grid plus the directory-topology cells.
SCENARIOS: dict[str, ScenarioSpec] = {**_table_i_specs(), **_matrix_specs()}


def scenario_spec_by_name(name: str) -> ScenarioSpec:
    """Look up a registered :class:`ScenarioSpec` by name.

    Unknown names raise :class:`ConfigError` listing every registered
    choice, mirroring :func:`repro.mem.protocols.make_policy`.
    """
    spec = SCENARIOS.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(sorted(SCENARIOS))}"
        )
    return spec


#: Rows and columns of the leaderboard matrix.
MATRIX_ROWS = ("mesi", "mesif", "moesi", "directory")
MATRIX_COLS = CHANNEL_FAMILIES


def matrix_cell(row: str, channel: str) -> ScenarioSpec | None:
    """The registered spec for one (protocol-row, channel) cell.

    Rows are the snoop protocols plus ``"directory"`` (the topology
    row).  Returns ``None`` for undefined cells — currently only
    directory x lru, where an eviction sweep cannot probe the home
    directory's (non-set-associative) state.
    """
    if row not in MATRIX_ROWS:
        raise ConfigError(
            f"unknown matrix row {row!r}; rows: {', '.join(MATRIX_ROWS)}"
        )
    if channel not in MATRIX_COLS:
        raise ConfigError(
            f"unknown channel family {channel!r}; "
            f"columns: {', '.join(MATRIX_COLS)}"
        )
    name = (
        f"dir-{channel}" if row == "directory" else f"{row}-{channel}"
    )
    return SCENARIOS.get(name)

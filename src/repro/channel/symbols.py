"""Multi-bit symbol transmission (Section VIII-D / Figure 11).

Instead of one (location, state) pair for data and one for boundaries,
the trojan uses *all four* pairs — LShared, LExcl, RShared, RExcl — to
encode a 2-bit symbol per transmission slot group, with an idle (no
cached copy -> DRAM band) gap delimiting symbols.  The paper measures a
peak of ~1.1 Mbps against ~700 Kbps for the best binary channel.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

from repro.channel.calibration import DEFAULT_CALIBRATION_SAMPLES, DRAM_LABEL
from repro.channel.config import ALL_PAIRS, ProtocolParams, Scenario, StatePair
from repro.channel.decoder import Sample, pack_samples, unpack_samples
from repro.channel.metrics import Alignment, align_bits, transmission_rate_kbps
from repro.channel.session import SessionBase, SessionConfig, resolve_spec
from repro.channel.trojan import TrojanControl, worker_roles
from repro.errors import ConfigError
from repro.mem.latency import CLOCK_HZ
from repro.obs import RunManifest
from repro.sim.thread import Cpu

#: Symbol alphabet: index -> state pair.  Two bits per symbol:
#: 00=LShared, 01=LExcl, 10=RShared, 11=RExcl.
SYMBOL_PAIRS: tuple[StatePair, ...] = ALL_PAIRS

BITS_PER_SYMBOL = 2

#: The multi-bit trojan needs the full worker complement: two readers on
#: each socket.  This equals the RSharedc-LSharedb placement of Table I.
_PLACEMENT_SCENARIO = Scenario(csc=SYMBOL_PAIRS[2], csb=SYMBOL_PAIRS[0])


@dataclass(frozen=True)
class SymbolParams:
    """Knobs of the 2-bit symbol protocol."""

    #: Slots the trojan holds each symbol's state pair.
    symbol_slots: int = 4
    #: Idle slots (no cached copy) delimiting symbols.
    gap_slots: int = 2
    #: Spy sampling slot duration and overhead (as in ProtocolParams).
    slot_cycles: float = 1_100.0
    spy_overhead_cycles: float = 430.0
    reload_divisor: float = 4.0
    worker_spin_cycles: float = 24.0
    #: Consecutive idle samples ending reception (must exceed gap_slots
    #: by a comfortable margin).
    end_run: int = 9
    max_poll_slots: int = 4_000

    def __post_init__(self) -> None:
        if self.end_run <= self.gap_slots + 2:
            raise ConfigError("end_run must clearly exceed gap_slots")

    @property
    def spy_wait_cycles(self) -> float:
        """Spy wait between flush and timed load."""
        return self.slot_cycles - self.spy_overhead_cycles

    @property
    def slots_per_symbol(self) -> float:
        """Total slots consumed per symbol including the gap."""
        return self.symbol_slots + self.gap_slots

    @property
    def nominal_rate_kbps(self) -> float:
        """Design bit rate (2 bits per symbol group)."""
        cycles_per_symbol = self.slots_per_symbol * self.slot_cycles
        return BITS_PER_SYMBOL * CLOCK_HZ / cycles_per_symbol / 1e3

    def at_rate(self, kbps: float) -> "SymbolParams":
        """Retune the slot duration for a target bit rate."""
        if kbps <= 0:
            raise ConfigError("rate must be positive")
        cycles_per_symbol = BITS_PER_SYMBOL * CLOCK_HZ / (kbps * 1e3)
        slot = cycles_per_symbol / self.slots_per_symbol
        overhead = min(self.spy_overhead_cycles, slot * 0.6)
        return replace(self, slot_cycles=slot, spy_overhead_cycles=overhead)

    def as_protocol_params(self) -> ProtocolParams:
        """Worker-compatible view (workers only read reload knobs)."""
        return ProtocolParams(
            slot_cycles=self.slot_cycles,
            spy_overhead_cycles=self.spy_overhead_cycles,
            reload_divisor=self.reload_divisor,
            worker_spin_cycles=self.worker_spin_cycles,
            end_run=self.end_run,
            max_poll_slots=self.max_poll_slots,
        )


def bits_to_symbols(bits: list[int]) -> list[int]:
    """Pack a bit list (MSB first per pair) into 2-bit symbol values."""
    if len(bits) % BITS_PER_SYMBOL:
        raise ConfigError("payload length must be a multiple of 2 bits")
    return [
        (bits[i] << 1) | bits[i + 1] for i in range(0, len(bits), 2)
    ]


def symbols_to_bits(symbols: list[int]) -> list[int]:
    """Unpack 2-bit symbol values back into bits."""
    out: list[int] = []
    for value in symbols:
        out.extend(((value >> 1) & 1, value & 1))
    return out


@dataclass
class SymbolDecodeReport:
    """Decoded symbols plus diagnostics."""

    symbols: list[int]
    bits: list[int]
    segments: list[tuple[int, int]] = field(default_factory=list)


class SymbolDecoder:
    """Classify spy samples into the 4-symbol alphabet and segment them."""

    def __init__(self, bands, params: SymbolParams):
        self._bands = bands
        self._params = params
        for i, first in enumerate(SYMBOL_PAIRS):
            for second in SYMBOL_PAIRS[i + 1:]:
                bands.check_separation(first, second)

    def label(self, latency: float) -> int | None:
        """Symbol value for a latency, or None for idle/unknown."""
        result = self._bands.classify(latency)
        if result is None or result == DRAM_LABEL:
            return None
        return SYMBOL_PAIRS.index(result)

    def decode(self, samples: list[Sample]) -> SymbolDecodeReport:
        """Segment samples at idle gaps; majority-vote each segment."""
        labels = [self.label(s.latency) for s in samples]
        # Repair isolated one-sample dropouts inside a segment.
        for i in range(1, len(labels) - 1):
            if labels[i] is None and labels[i - 1] == labels[i + 1] is not None:
                labels[i] = labels[i - 1]
        symbols: list[int] = []
        segments: list[tuple[int, int]] = []
        start = None
        for i, label in enumerate([*labels, None]):
            if label is not None and start is None:
                start = i
            elif label is None and start is not None:
                votes = Counter(
                    lab for lab in labels[start:i] if lab is not None
                )
                symbols.append(votes.most_common(1)[0][0])
                segments.append((start, i))
                start = None
        return SymbolDecodeReport(
            symbols=symbols, bits=symbols_to_bits(symbols), segments=segments
        )


class SymbolTrojanControl(TrojanControl):
    """Control object reused by the binary worker program."""


def symbol_controller_program(
    control: TrojanControl,
    params: SymbolParams,
    block_va: int,
    symbols: list[int],
    lead_in_slots: int = 3,
):
    """Trojan controller: hold each symbol's pair, idle between symbols."""

    def program(cpu: Cpu):
        yield from cpu.delay(lead_in_slots * params.slot_cycles)
        for value in symbols:
            control.set_pair(SYMBOL_PAIRS[value])
            yield from cpu.flush(block_va)
            yield from cpu.delay(params.symbol_slots * params.slot_cycles)
            control.set_pair(None)
            yield from cpu.flush(block_va)
            yield from cpu.delay(params.gap_slots * params.slot_cycles)
        control.stop()
        yield from cpu.delay(2 * params.slot_cycles)

    return program


@dataclass
class SymbolSpyState:
    """Samples collected by the multi-bit spy."""

    samples: list[Sample] = field(default_factory=list)
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def reception_cycles(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


def symbol_spy_program(
    state: SymbolSpyState,
    decoder: SymbolDecoder,
    params: SymbolParams,
    block_va: int,
):
    """Spy: sample every slot; start on first in-band load, stop on quiet."""

    pacing = {"next_slot": None}

    def sample_once(cpu: Cpu):
        now = yield from cpu.rdtsc()
        target = pacing["next_slot"]
        if target is None or target <= now:
            target = now
        else:
            yield from cpu.delay(target - now)
        pacing["next_slot"] = target + params.slot_cycles
        yield from cpu.flush(block_va)
        yield from cpu.delay(params.spy_wait_cycles)
        load = yield from cpu.timed_load(block_va)
        label = decoder.label(load.latency)
        return Sample(
            timestamp=load.timestamp,
            latency=load.latency,
            label="x" if label is None else str(label),
            path=load.path,
        )

    def program(cpu: Cpu):
        polls = 0
        while True:
            sample = yield from sample_once(cpu)
            if sample.label != "x":
                state.started_at = sample.timestamp
                state.samples.append(sample)
                break
            polls += 1
            if polls >= params.max_poll_slots:
                return
        quiet = 0
        while quiet < params.end_run:
            sample = yield from sample_once(cpu)
            state.samples.append(sample)
            quiet = quiet + 1 if sample.label == "x" else 0
            if len(state.samples) >= params.max_poll_slots:
                state.finished_at = sample.timestamp
                return
        del state.samples[-params.end_run:]
        state.finished_at = (
            state.samples[-1].timestamp if state.samples else None
        )

    return program


@dataclass
class SymbolTransmissionResult:
    """Outcome of one multi-bit transmission."""

    sent_bits: list[int]
    received_bits: list[int]
    sent_symbols: list[int]
    received_symbols: list[int]
    alignment: Alignment
    samples: list[Sample]
    cycles: float
    nominal_rate_kbps: float
    #: :class:`~repro.obs.RunManifest` snapshot (see TransmissionResult).
    manifest: object = field(default=None, compare=False)

    @property
    def accuracy(self) -> float:
        """Raw-bit accuracy of the 2-bit-symbol channel."""
        return self.alignment.accuracy

    @property
    def achieved_rate_kbps(self) -> float:
        """Measured raw bit rate over the reception window."""
        return transmission_rate_kbps(len(self.sent_bits), self.cycles)

    def __getstate__(self) -> dict:
        # Same compact transport as TransmissionResult: symbol labels
        # ("0".."3"/"x") are single characters, so samples pack into
        # typed arrays for IPC and cache storage.
        state = dict(self.__dict__)
        state["samples"] = pack_samples(state["samples"])
        return state

    def __setstate__(self, state: dict) -> None:
        state = dict(state)
        state["samples"] = unpack_samples(state["samples"])
        state.setdefault("manifest", None)  # pre-1.3 pickles
        self.__dict__.update(state)


class MultiBitSession(SessionBase):
    """A 2-bit-per-symbol covert channel session (Section VIII-D)."""

    def __init__(
        self,
        symbol_params: SymbolParams | None = None,
        seed: int = 0,
        sharing: str = "ksm",
        noise_threads: int = 0,
        machine=None,
        calibration_samples: int = DEFAULT_CALIBRATION_SAMPLES,
    ):
        self.symbol_params = (
            symbol_params if symbol_params is not None else SymbolParams()
        )
        from repro.mem.hierarchy import MachineConfig

        config = SessionConfig(
            spec=resolve_spec(_PLACEMENT_SCENARIO),
            params=self.symbol_params.as_protocol_params(),
            seed=seed,
            sharing=sharing,
            noise_threads=noise_threads,
            machine=machine if machine is not None else MachineConfig(),
            calibration_samples=calibration_samples,
        )
        super().__init__(config)

    def _worker_demand(self) -> tuple[int, int]:
        return 2, 2  # two readers on each socket

    def transmit(self, bits: list[int]) -> SymbolTransmissionResult:
        """Send *bits* (even count) as 2-bit symbols; decode and score."""
        symbols = bits_to_symbols(list(bits))
        tag = self.next_tag()
        control = TrojanControl()
        decoder = SymbolDecoder(self.bands, self.symbol_params)
        state = SymbolSpyState()

        self.spawn_workers(worker_roles(_PLACEMENT_SCENARIO), control, tag)
        self.spawn_controller(
            symbol_controller_program(
                control, self.symbol_params, self.trojan_va, symbols
            ),
            tag,
        )
        self.kernel.spawn(
            self.spy_proc,
            f"spy-mb-{tag}",
            symbol_spy_program(state, decoder, self.symbol_params, self.spy_va),
            core_id=self.config.spy_core,
            daemon=False,
        )
        self.sim.run()

        report = decoder.decode(state.samples)
        alignment = align_bits(list(bits), report.bits)
        return SymbolTransmissionResult(
            manifest=RunManifest.capture(self),
            sent_bits=list(bits),
            received_bits=report.bits,
            sent_symbols=symbols,
            received_symbols=report.symbols,
            alignment=alignment,
            samples=list(state.samples),
            cycles=state.reception_cycles,
            nominal_rate_kbps=self.symbol_params.nominal_rate_kbps,
        )

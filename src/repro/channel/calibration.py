"""Latency-band calibration (Section V / Figure 2).

Before transmitting, the trojan and spy learn the latency bands Tc/Tb by
self-measurement: place the shared block in each (location, state)
combination and time loads.  :func:`calibrate` mirrors the paper's
micro-benchmark loop; the paper times :data:`PAPER_CALIBRATION_SAMPLES`
(1,000) loads per combination, while sessions default to
:data:`DEFAULT_CALIBRATION_SAMPLES` (400) — on the simulated machine the
band percentiles converge well before 400 samples, and the smaller count
keeps grid sweeps tractable (see the note on the constants below).
:func:`calibrate` returns :class:`LatencyBands`, the classifier the
spy-side decoder uses.

Calibration is the dominant *fixed* cost of an experiment point (about
2,000 simulated flush/place/load rounds before the first payload bit
moves), and it is a pure function of the machine configuration, the root
seed, and the sampling parameters — every point of a Figure 8/9 grid
that shares those re-derives the exact same bands.
:func:`calibrate_memoized` exploits that with a process-local memo: the
first point pays for calibration, later points restore the bands *and*
the post-calibration RNG stream states, so their transmissions remain
bit-identical to a cold run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.channel.config import ALL_PAIRS, LineState, Location, StatePair
from repro.errors import CalibrationError
from repro.mem.hierarchy import Machine

#: Timed loads per (location, state) combination in the paper's Figure 2
#: micro-benchmark (Section V).
PAPER_CALIBRATION_SAMPLES = 1000

#: Default timed loads per combination for simulated sessions.  The
#: substitution is deliberate: the simulator's latency distributions are
#: stationary, so the 2nd/98th percentile band edges are stable to well
#: under a cycle by 400 samples, and a grid point spends ~2.5x less time
#: calibrating.  Pass ``calibration_samples=PAPER_CALIBRATION_SAMPLES``
#: to reproduce the paper's exact measurement count.
DEFAULT_CALIBRATION_SAMPLES = 400

#: Extra padding (cycles) added around the measured percentile range.
BAND_PAD = 5.0

#: Label used for the no-cached-copy band.
DRAM_LABEL = "dram"


@dataclass(frozen=True)
class Band:
    """A closed latency interval believed to identify one service path."""

    label: str
    lo: float
    hi: float

    def contains(self, latency: float) -> bool:
        """Whether *latency* falls inside the band."""
        return self.lo <= latency <= self.hi

    @property
    def center(self) -> float:
        """Band midpoint."""
        return (self.lo + self.hi) / 2.0

    def __str__(self) -> str:
        return f"{self.label}[{self.lo:.0f},{self.hi:.0f}]"


@dataclass
class LatencyBands:
    """The calibrated band set: one per (location, state) pair plus DRAM."""

    bands: dict[StatePair, Band] = field(default_factory=dict)
    dram: Band | None = None

    def band_for(self, pair: StatePair) -> Band:
        """The band calibrated for *pair* (KeyError if not calibrated).

        A COLD pair has no placement of its own — an evicted block
        reloads from memory — so the DRAM band is its signature.
        """
        if pair.state is LineState.COLD:
            if self.dram is None:
                raise KeyError(pair)
            return self.dram
        return self.bands[pair]

    def classify(self, latency: float) -> StatePair | str | None:
        """Map a latency to its state pair, ``"dram"``, or None.

        Bands are checked narrowest-first so overlap resolves to the
        tighter (more specific) band.
        """
        candidates: list[tuple[float, StatePair | str]] = []
        for pair, band in self.bands.items():
            if band.contains(latency):
                candidates.append((band.hi - band.lo, pair))
        if self.dram is not None and self.dram.contains(latency):
            candidates.append((self.dram.hi - self.dram.lo, DRAM_LABEL))
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        return candidates[0][1]

    def check_separation(self, first: StatePair, second: StatePair) -> None:
        """Raise CalibrationError if two bands overlap (unusable pair)."""
        a = self.band_for(first)
        b = self.band_for(second)
        if a.lo <= b.hi and b.lo <= a.hi:
            raise CalibrationError(
                f"bands overlap: {a} vs {b}; cannot build a channel on them"
            )


def _place_pair(
    machine: Machine,
    pair: StatePair,
    paddr: int,
    now: float,
    local_cores: tuple[int, int],
    remote_cores: tuple[int, int],
) -> float:
    """Drive the machine so the line sits in *pair*'s location and state.

    Returns the cycles the placement loads took (the measurement clock
    must advance realistically or the contention model sees an
    impossible burst at a single instant).
    """
    cores = local_cores if pair.location is Location.LOCAL else remote_cores
    if pair.state is LineState.COLD:
        # COLD is the absence of placement: leave the line flushed.
        return 0.0
    if pair.state is LineState.OWNED:
        # Dirty the line, then have a second core's read pull the owner
        # into O (on MOESI; MESI-family machines write back and demote
        # to S instead, which is exactly the divergence the O-state
        # channel's calibration detects as an unusable band overlap).
        store_latency, _p = machine.store(cores[0], paddr, 1, now)
        elapsed = store_latency
        _v, latency, _p = machine.load(cores[1], paddr, now + elapsed)
        return elapsed + latency
    _v, latency, _p = machine.load(cores[0], paddr, now)
    elapsed = latency
    if pair.state is LineState.SHARED:
        _v, latency, _p = machine.load(cores[1], paddr, now + elapsed)
        elapsed += latency
    return elapsed


def measure_pair(
    machine: Machine,
    pair: StatePair,
    paddr: int,
    samples: int,
    spy_core: int = 0,
    local_cores: tuple[int, int] = (1, 2),
    remote_cores: tuple[int, int] | None = None,
) -> np.ndarray:
    """Timed-load latencies for one (location, state) pair.

    Each sample is a full flush / place-state / timed-load round, exactly
    the measurement loop of Section V.
    """
    if remote_cores is None:
        remote_cores = _default_remote_cores(machine)
    out = np.empty(samples, dtype=float)
    now = 0.0
    for i in range(samples):
        now += machine.flush(spy_core, paddr, now)
        now += _place_pair(machine, pair, paddr, now, local_cores, remote_cores)
        _value, latency, _path = machine.load(spy_core, paddr, now)
        now += latency
        out[i] = latency
    return out


def measure_dram(
    machine: Machine, paddr: int, samples: int, spy_core: int = 0
) -> np.ndarray:
    """Timed-load latencies with no cached copy anywhere."""
    out = np.empty(samples, dtype=float)
    now = 0.0
    for i in range(samples):
        now += machine.flush(spy_core, paddr, now)
        _value, latency, _path = machine.load(spy_core, paddr, now)
        now += latency
        out[i] = latency
    return out


def _default_remote_cores(machine: Machine) -> tuple[int, int]:
    cfg = machine.config
    if cfg.n_sockets < 2:
        # Single-socket machine: remote pairs are not measurable; callers
        # should restrict themselves to local pairs.
        return (1, 2)
    base = cfg.cores_per_socket
    return (base, base + 1)


#: How far a band's upper edge is stretched toward the next band.
#: Queuing delay only ever *adds* latency, so a sample pushed slightly
#: past its quiet-machine band must still belong to it; the paper's own
#: calibration runs under a representative ambient workload and gets
#: this headroom for free.
BAND_STRETCH = 14.0


def _stretch_upward(bands: LatencyBands, stretch: float = BAND_STRETCH) -> None:
    ordered = sorted(bands.bands.items(), key=lambda kv: kv[1].lo)
    for i, (pair, band) in enumerate(ordered):
        hi = band.hi + stretch
        if i + 1 < len(ordered):
            hi = min(hi, ordered[i + 1][1].lo - 2.0)
        hi = max(hi, band.hi)
        bands.bands[pair] = Band(label=band.label, lo=band.lo, hi=hi)


def calibrate(
    machine: Machine,
    paddr: int = 0x40_0000,
    samples: int = PAPER_CALIBRATION_SAMPLES,
    spy_core: int = 0,
    percentiles: tuple[float, float] = (2.0, 98.0),
    pad: float = BAND_PAD,
    include_dram: bool = True,
    extra_pairs: tuple[StatePair, ...] = (),
) -> tuple[LatencyBands, dict[str, np.ndarray]]:
    """Calibrate every measurable band; returns (bands, raw samples).

    The raw sample arrays (keyed by pair notation and ``"dram"``) are what
    Figure 2's CDFs are drawn from.

    *extra_pairs* are non-standard pairs (O-state, MRU) a scenario needs
    beyond :data:`ALL_PAIRS`.  They are measured strictly *after* the
    four standard pairs: the RNG draw order of a session with no extras
    must stay bit-identical to the pre-extras code (golden digests).
    """
    bands = LatencyBands()
    raw: dict[str, np.ndarray] = {}
    multi_socket = machine.config.n_sockets >= 2
    for pair in ALL_PAIRS:
        if pair.location is Location.REMOTE and not multi_socket:
            continue
        machine.interconnect.reset()
        data = measure_pair(machine, pair, paddr, samples, spy_core)
        raw[pair.notation] = data
        lo = float(np.percentile(data, percentiles[0])) - pad
        hi = float(np.percentile(data, percentiles[1])) + pad
        bands.bands[pair] = Band(label=pair.notation, lo=lo, hi=hi)
    for pair in extra_pairs:
        if pair in bands.bands:
            continue
        if pair.location is Location.REMOTE and not multi_socket:
            continue
        machine.interconnect.reset()
        data = measure_pair(machine, pair, paddr, samples, spy_core)
        raw[pair.notation] = data
        lo = float(np.percentile(data, percentiles[0])) - pad
        hi = float(np.percentile(data, percentiles[1])) + pad
        bands.bands[pair] = Band(label=pair.notation, lo=lo, hi=hi)
    _stretch_upward(bands)
    if include_dram:
        machine.interconnect.reset()
        data = measure_dram(machine, paddr, samples, spy_core)
        raw[DRAM_LABEL] = data
        lo = float(np.percentile(data, percentiles[0])) - pad
        hi = float(np.percentile(data, percentiles[1])) + pad * 8
        bands.dram = Band(label=DRAM_LABEL, lo=lo, hi=hi)
    machine.flush(spy_core, paddr)
    machine.interconnect.reset()
    return bands, raw


# ----------------------------------------------------------------------
# process-local calibration memo
# ----------------------------------------------------------------------

#: memo key -> (bands, post-calibration RNG snapshot).  Process-local by
#: construction: pool workers each grow their own copy, and forked
#: children inherit a bit-identical one.
_MEMO: dict[tuple, tuple[LatencyBands, dict[str, dict]]] = {}


def calibration_memo_enabled() -> bool:
    """Whether the process-local calibration memo is active.

    ``REPRO_CALIBRATION_MEMO=0`` disables it globally (every session
    then calibrates from scratch, the pre-memo behavior).
    """
    return os.environ.get("REPRO_CALIBRATION_MEMO", "1") != "0"


def clear_calibration_memo() -> int:
    """Drop every memoized calibration; returns how many were held."""
    count = len(_MEMO)
    _MEMO.clear()
    return count


def _clone_bands(bands: LatencyBands) -> LatencyBands:
    """An independent copy (Band records are frozen, the dict is not)."""
    return LatencyBands(bands=dict(bands.bands), dram=bands.dram)


def calibrate_memoized(
    machine: Machine,
    key: tuple,
    paddr: int,
    samples: int,
    spy_core: int,
    extra_pairs: tuple[StatePair, ...] = (),
) -> LatencyBands:
    """Calibrate *machine*, reusing a memoized pass when *key* matches.

    *key* must capture everything that determines both the calibration
    measurements and the machine's RNG state at the moment of the call —
    in practice (machine-config fingerprint, root seed, sharing mode,
    samples, spy core, physical address); sessions build it via
    :meth:`repro.channel.session.SessionBase._calibration_key`.

    On a miss the real :func:`calibrate` runs and the resulting bands are
    stored together with a snapshot of every RNG stream.  On a hit the
    stored stream states are restored onto the machine's registry — the
    generators end up exactly where running calibration would have left
    them — so everything the session simulates afterwards is
    bit-identical to a cold calibration (locked by the golden-determinism
    digests).  Sessions whose calibration is *perturbed* (an installed
    obfuscation policy, fault plans that touch the calibration window)
    must bypass the memo entirely: a perturbed pass would poison the memo
    for clean sessions and vice versa.
    """
    hit = _MEMO.get(key)
    if hit is not None:
        bands, states = hit
        machine.rng.restore(states)
        return _clone_bands(bands)
    bands, _raw = calibrate(
        machine, paddr=paddr, samples=samples, spy_core=spy_core,
        extra_pairs=extra_pairs,
    )
    _MEMO[key] = (_clone_bands(bands), machine.rng.snapshot())
    return bands

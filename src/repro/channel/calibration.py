"""Latency-band calibration (Section V / Figure 2).

Before transmitting, the trojan and spy learn the latency bands Tc/Tb by
self-measurement: place the shared block in each (location, state)
combination and time loads.  :func:`calibrate` reproduces the paper's
micro-benchmark — 1,000 timed loads per combination — and returns
:class:`LatencyBands`, the classifier the spy-side decoder uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.config import ALL_PAIRS, LineState, Location, StatePair
from repro.errors import CalibrationError
from repro.mem.hierarchy import Machine

#: Extra padding (cycles) added around the measured percentile range.
BAND_PAD = 5.0

#: Label used for the no-cached-copy band.
DRAM_LABEL = "dram"


@dataclass(frozen=True)
class Band:
    """A closed latency interval believed to identify one service path."""

    label: str
    lo: float
    hi: float

    def contains(self, latency: float) -> bool:
        """Whether *latency* falls inside the band."""
        return self.lo <= latency <= self.hi

    @property
    def center(self) -> float:
        """Band midpoint."""
        return (self.lo + self.hi) / 2.0

    def __str__(self) -> str:
        return f"{self.label}[{self.lo:.0f},{self.hi:.0f}]"


@dataclass
class LatencyBands:
    """The calibrated band set: one per (location, state) pair plus DRAM."""

    bands: dict[StatePair, Band] = field(default_factory=dict)
    dram: Band | None = None

    def band_for(self, pair: StatePair) -> Band:
        """The band calibrated for *pair* (KeyError if not calibrated)."""
        return self.bands[pair]

    def classify(self, latency: float) -> StatePair | str | None:
        """Map a latency to its state pair, ``"dram"``, or None.

        Bands are checked narrowest-first so overlap resolves to the
        tighter (more specific) band.
        """
        candidates: list[tuple[float, StatePair | str]] = []
        for pair, band in self.bands.items():
            if band.contains(latency):
                candidates.append((band.hi - band.lo, pair))
        if self.dram is not None and self.dram.contains(latency):
            candidates.append((self.dram.hi - self.dram.lo, DRAM_LABEL))
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        return candidates[0][1]

    def check_separation(self, first: StatePair, second: StatePair) -> None:
        """Raise CalibrationError if two bands overlap (unusable pair)."""
        a = self.band_for(first)
        b = self.band_for(second)
        if a.lo <= b.hi and b.lo <= a.hi:
            raise CalibrationError(
                f"bands overlap: {a} vs {b}; cannot build a channel on them"
            )


def _place_pair(
    machine: Machine,
    pair: StatePair,
    paddr: int,
    now: float,
    local_cores: tuple[int, int],
    remote_cores: tuple[int, int],
) -> float:
    """Drive the machine so the line sits in *pair*'s location and state.

    Returns the cycles the placement loads took (the measurement clock
    must advance realistically or the contention model sees an
    impossible burst at a single instant).
    """
    cores = local_cores if pair.location is Location.LOCAL else remote_cores
    _v, latency, _p = machine.load(cores[0], paddr, now)
    elapsed = latency
    if pair.state is LineState.SHARED:
        _v, latency, _p = machine.load(cores[1], paddr, now + elapsed)
        elapsed += latency
    return elapsed


def measure_pair(
    machine: Machine,
    pair: StatePair,
    paddr: int,
    samples: int,
    spy_core: int = 0,
    local_cores: tuple[int, int] = (1, 2),
    remote_cores: tuple[int, int] | None = None,
) -> np.ndarray:
    """Timed-load latencies for one (location, state) pair.

    Each sample is a full flush / place-state / timed-load round, exactly
    the measurement loop of Section V.
    """
    if remote_cores is None:
        remote_cores = _default_remote_cores(machine)
    out = np.empty(samples, dtype=float)
    now = 0.0
    for i in range(samples):
        now += machine.flush(spy_core, paddr, now)
        now += _place_pair(machine, pair, paddr, now, local_cores, remote_cores)
        _value, latency, _path = machine.load(spy_core, paddr, now)
        now += latency
        out[i] = latency
    return out


def measure_dram(
    machine: Machine, paddr: int, samples: int, spy_core: int = 0
) -> np.ndarray:
    """Timed-load latencies with no cached copy anywhere."""
    out = np.empty(samples, dtype=float)
    now = 0.0
    for i in range(samples):
        now += machine.flush(spy_core, paddr, now)
        _value, latency, _path = machine.load(spy_core, paddr, now)
        now += latency
        out[i] = latency
    return out


def _default_remote_cores(machine: Machine) -> tuple[int, int]:
    cfg = machine.config
    if cfg.n_sockets < 2:
        # Single-socket machine: remote pairs are not measurable; callers
        # should restrict themselves to local pairs.
        return (1, 2)
    base = cfg.cores_per_socket
    return (base, base + 1)


#: How far a band's upper edge is stretched toward the next band.
#: Queuing delay only ever *adds* latency, so a sample pushed slightly
#: past its quiet-machine band must still belong to it; the paper's own
#: calibration runs under a representative ambient workload and gets
#: this headroom for free.
BAND_STRETCH = 14.0


def _stretch_upward(bands: LatencyBands, stretch: float = BAND_STRETCH) -> None:
    ordered = sorted(bands.bands.items(), key=lambda kv: kv[1].lo)
    for i, (pair, band) in enumerate(ordered):
        hi = band.hi + stretch
        if i + 1 < len(ordered):
            hi = min(hi, ordered[i + 1][1].lo - 2.0)
        hi = max(hi, band.hi)
        bands.bands[pair] = Band(label=band.label, lo=band.lo, hi=hi)


def calibrate(
    machine: Machine,
    paddr: int = 0x40_0000,
    samples: int = 1000,
    spy_core: int = 0,
    percentiles: tuple[float, float] = (2.0, 98.0),
    pad: float = BAND_PAD,
    include_dram: bool = True,
) -> tuple[LatencyBands, dict[str, np.ndarray]]:
    """Calibrate every measurable band; returns (bands, raw samples).

    The raw sample arrays (keyed by pair notation and ``"dram"``) are what
    Figure 2's CDFs are drawn from.
    """
    bands = LatencyBands()
    raw: dict[str, np.ndarray] = {}
    multi_socket = machine.config.n_sockets >= 2
    for pair in ALL_PAIRS:
        if pair.location is Location.REMOTE and not multi_socket:
            continue
        machine.interconnect.reset()
        data = measure_pair(machine, pair, paddr, samples, spy_core)
        raw[pair.notation] = data
        lo = float(np.percentile(data, percentiles[0])) - pad
        hi = float(np.percentile(data, percentiles[1])) + pad
        bands.bands[pair] = Band(label=pair.notation, lo=lo, hi=hi)
    _stretch_upward(bands)
    if include_dram:
        machine.interconnect.reset()
        data = measure_dram(machine, paddr, samples, spy_core)
        raw[DRAM_LABEL] = data
        lo = float(np.percentile(data, percentiles[0])) - pad
        hi = float(np.percentile(data, percentiles[1])) + pad * 8
        bands.dram = Band(label=DRAM_LABEL, lo=lo, hi=hi)
    machine.flush(spy_core, paddr)
    machine.interconnect.reset()
    return bands, raw

"""Error detection and retransmission (Section VIII-C / Figure 10).

The paper's scheme: each 64-byte packet carries 16 parity bits, one per
4-byte chunk.  The spy verifies parity after each packet; on failure it
sends a NACK bit back through the *reverse* channel (the roles of trojan
and spy are swapped just for the acknowledgement), and the trojan
retransmits until the packet is received intact.  The effective
information rate therefore pays for parity overhead, NACK round trips
and retransmissions — under high noise the paper measures a worst-case
24% rate reduction in exchange for guaranteed delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.config import ProtocolParams, Scenario
from repro.channel.metrics import goodput_kbps
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.errors import ChannelError, ConfigError
from repro.mem.hierarchy import MachineConfig

#: Paper packet geometry: 64 data bytes, parity per 4-byte chunk.
PACKET_DATA_BYTES = 64
CHUNK_BYTES = 4

#: CRC-16/CCITT polynomial used by the strengthened checksum variant.
CRC16_POLY = 0x1021
CRC16_INIT = 0xFFFF


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over *data*."""
    crc = CRC16_INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ CRC16_POLY) if crc & 0x8000 else crc << 1
            crc &= 0xFFFF
    return crc


def bytes_to_bits(data: bytes) -> list[int]:
    """MSB-first bit expansion."""
    return [(byte >> (7 - i)) & 1 for byte in data for i in range(8)]


def bits_to_bytes(bits: list[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits` (length must be a multiple of 8)."""
    if len(bits) % 8:
        raise ConfigError("bit count must be a multiple of 8")
    out = bytearray()
    for i in range(0, len(bits), 8):
        value = 0
        for bit in bits[i:i + 8]:
            value = (value << 1) | (bit & 1)
        out.append(value)
    return bytes(out)


def encode_packet(data: bytes, chunk_bytes: int = CHUNK_BYTES) -> list[int]:
    """Append one even-parity bit per *chunk_bytes* chunk to the data bits."""
    if len(data) % chunk_bytes:
        raise ConfigError(
            f"packet length {len(data)} is not a multiple of {chunk_bytes}"
        )
    bits = bytes_to_bits(data)
    parity: list[int] = []
    chunk_bits = chunk_bytes * 8
    for i in range(0, len(bits), chunk_bits):
        parity.append(sum(bits[i:i + chunk_bits]) & 1)
    return bits + parity


def encode_packet_crc16(data: bytes) -> list[int]:
    """Append a 16-bit CRC to the data bits.

    The paper's per-chunk parity misses even numbers of flips within a
    chunk; at the error rates our noisier substrate produces this
    happens often enough to deliver corrupt packets, so the reliable
    channel also supports a CRC-16 packet format that makes undetected
    corruption negligible.
    """
    value = crc16(data)
    return bytes_to_bits(data) + [(value >> (15 - i)) & 1 for i in range(16)]


def check_packet_crc16(
    bits: list[int], data_bytes: int
) -> tuple[bool, bytes | None]:
    """Verify a CRC-16 packet; returns (ok, data)."""
    expected = data_bytes * 8 + 16
    if len(bits) != expected:
        return False, None
    data = bits_to_bytes(bits[: data_bytes * 8])
    received = 0
    for bit in bits[data_bytes * 8:]:
        received = (received << 1) | (bit & 1)
    if crc16(data) != received:
        return False, None
    return True, data


def check_packet(
    bits: list[int], data_bytes: int, chunk_bytes: int = CHUNK_BYTES
) -> tuple[bool, bytes | None]:
    """Verify parity; returns (ok, data) with data None on failure."""
    n_chunks = data_bytes // chunk_bytes
    expected = data_bytes * 8 + n_chunks
    if len(bits) != expected:
        return False, None
    data_bits = bits[: data_bytes * 8]
    parity = bits[data_bytes * 8:]
    chunk_bits = chunk_bytes * 8
    for chunk_index in range(n_chunks):
        start = chunk_index * chunk_bits
        if (sum(data_bits[start:start + chunk_bits]) & 1) != parity[chunk_index]:
            return False, None
    return True, bits_to_bytes(data_bits)


@dataclass
class ReliableTransferResult:
    """Outcome of a parity+NACK protected transfer."""

    payload: bytes
    delivered: bytes
    packets: int
    transmissions: int          # packet sends including retransmissions
    nacks: int                  # reverse-channel acknowledgement bits sent
    forward_cycles: float
    reverse_cycles: float
    packet_attempts: list[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """All cycles spent, forward plus acknowledgement traffic."""
        return self.forward_cycles + self.reverse_cycles

    @property
    def effective_rate_kbps(self) -> float:
        """Information bits delivered per second (Figure 10's y-axis)."""
        return goodput_kbps(len(self.payload) * 8, self.total_cycles)

    @property
    def intact(self) -> bool:
        """Whether the delivered payload matches exactly."""
        return self.delivered == self.payload


class ReliableChannel:
    """Packetized transfer with parity checking and NACK retransmission.

    Two sessions are held: the *forward* channel (trojan -> spy) carrying
    packets, and a mirrored *reverse* channel carrying the 1-bit
    NACK/ACK, modeling the role reversal of Section VIII-C.  Both live on
    identically configured machines so the acknowledgement pays a
    realistic cycle cost without entangling the two directions' cache
    state (the real parties also use disjoint block offsets per
    direction).
    """

    def __init__(
        self,
        scenario: Scenario | str,
        params: ProtocolParams | None = None,
        seed: int = 0,
        noise_threads: int = 0,
        machine: MachineConfig | None = None,
        packet_bytes: int = PACKET_DATA_BYTES,
        max_attempts: int = 12,
        checksum: str = "parity",
        retry_backoff_cycles: float = 0.0,
    ):
        if packet_bytes % CHUNK_BYTES:
            raise ConfigError("packet_bytes must be a multiple of 4")
        if checksum not in ("parity", "crc16"):
            raise ConfigError(f"unknown checksum {checksum!r}")
        self.packet_bytes = packet_bytes
        self.max_attempts = max_attempts
        self.checksum = checksum
        #: Idle time inserted before a retransmission.  Under bursty
        #: noise, immediate retries tend to fail the same way (the noise
        #: pattern is phase-locked with the sampling grid); backing off
        #: re-randomizes the phase.  Counted against the effective rate.
        self.retry_backoff_cycles = retry_backoff_cycles
        params = params if params is not None else ProtocolParams()
        machine = machine if machine is not None else MachineConfig()
        spec = resolve_spec(scenario)
        self.forward = ChannelSession(SessionConfig(
            spec=spec, params=params, seed=seed,
            noise_threads=noise_threads, machine=machine,
        ))
        self.reverse = ChannelSession(SessionConfig(
            spec=spec, params=params, seed=seed + 7_919,
            noise_threads=noise_threads, machine=machine,
        ))

    def _send_nack(self, bit: int) -> float:
        """Send one acknowledgement bit on the reverse channel."""
        result = self.reverse.transmit([bit])
        return result.cycles

    def send(self, payload: bytes) -> ReliableTransferResult:
        """Deliver *payload* reliably; retransmit failed packets."""
        if len(payload) % self.packet_bytes:
            raise ConfigError(
                f"payload length must be a multiple of {self.packet_bytes}"
            )
        delivered = bytearray()
        transmissions = 0
        nacks = 0
        forward_cycles = 0.0
        reverse_cycles = 0.0
        attempts_log: list[int] = []
        n_packets = len(payload) // self.packet_bytes
        for p in range(n_packets):
            chunk = payload[p * self.packet_bytes:(p + 1) * self.packet_bytes]
            if self.checksum == "crc16":
                encoded = encode_packet_crc16(chunk)
            else:
                encoded = encode_packet(chunk)
            attempts = 0
            while True:
                attempts += 1
                transmissions += 1
                result = self.forward.transmit(encoded)
                forward_cycles += result.cycles
                if self.checksum == "crc16":
                    ok, data = check_packet_crc16(
                        result.received, self.packet_bytes
                    )
                else:
                    ok, data = check_packet(result.received, self.packet_bytes)
                # The spy acknowledges every packet: NACK=1 requests a
                # resend, NACK=0 confirms receipt (Section VIII-C).
                nacks += 1
                reverse_cycles += self._send_nack(0 if ok else 1)
                if ok:
                    delivered.extend(data)
                    break
                if attempts >= self.max_attempts:
                    raise ChannelError(
                        f"packet {p} failed {attempts} times; channel unusable"
                    )
                if self.retry_backoff_cycles > 0:
                    self.forward.idle(self.retry_backoff_cycles)
                    forward_cycles += self.retry_backoff_cycles
            attempts_log.append(attempts)
        return ReliableTransferResult(
            payload=bytes(payload),
            delivered=bytes(delivered),
            packets=n_packets,
            transmissions=transmissions,
            nacks=nacks,
            forward_cycles=forward_cycles,
            reverse_cycles=reverse_cycles,
            packet_attempts=attempts_log,
        )

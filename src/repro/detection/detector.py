"""Covert-channel detectors over coherence-event telemetry.

The channel's signature is hard to hide: to transmit, the adversaries
*must* (a) flush a shared line at the sampling rate, (b) keep re-caching
it, and (c) manufacture E->S downgrades (or their absence) in patterned
runs.  The detectors below score those signatures:

* :class:`FlushStormDetector` — benign code essentially never clflushes
  one line hundreds of times per millisecond; a sustained flush storm on
  a *shared* line is the cheapest tell.
* :class:`PingPongDetector` — the covert line ping-pongs between a fixed
  reader set (spy flushing + trojan re-caching with owner forwarding);
  a high downgrade rate with a small, stable core set is suspicious.
* :class:`ModulationDetector` — the trojan's run-length encoding makes
  the downgrade stream *bursty in alternating runs*; benign sharing has
  no such slot-quantized structure.  Scored via the coefficient of
  variation of inter-downgrade gaps against a periodic baseline.

Scores combine in :class:`ChannelDetector`, which reports suspicious
lines and the core sets involved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.events import EventMonitor


@dataclass(frozen=True)
class Detection:
    """One flagged cache line."""

    line: int
    score: float
    flush_rate: float
    downgrade_rate: float
    cores: frozenset[int]
    reasons: tuple[str, ...]


class FlushStormDetector:
    """Flags lines flushed far above any benign rate."""

    def __init__(self, threshold_per_mcycle: float = 50.0):
        self.threshold = threshold_per_mcycle

    def score(self, monitor: EventMonitor, line: int, now: float) -> tuple[float, str | None]:
        rate = monitor.lines[line].flush_rate(now)
        if rate < self.threshold:
            return 0.0, None
        return min(1.0, rate / (4 * self.threshold)), (
            f"flush storm ({rate:.0f}/Mcycle)"
        )


class PingPongDetector:
    """Flags lines with heavy ownership ping-pong among few cores."""

    def __init__(
        self,
        downgrade_threshold: float = 25.0,
        max_core_set: int = 5,
    ):
        self.downgrade_threshold = downgrade_threshold
        self.max_core_set = max_core_set

    def score(self, monitor: EventMonitor, line: int, now: float) -> tuple[float, str | None]:
        activity = monitor.lines[line]
        rate = activity.downgrade_rate(now)
        cores = activity.touching_cores(now)
        if rate < self.downgrade_threshold or len(cores) > self.max_core_set:
            return 0.0, None
        return min(1.0, rate / (4 * self.downgrade_threshold)), (
            f"E->S ping-pong among {len(cores)} cores ({rate:.0f}/Mcycle)"
        )


class ModulationDetector:
    """Flags slot-quantized modulation in the downgrade stream.

    The trojan holds states for integer multiples of a slot, so
    inter-downgrade gaps concentrate on a lattice: many near one slot
    (within a communication run) plus occasional multi-slot gaps
    (boundaries / '0' holds).  Benign sharing produces either Poisson
    gaps (CV ~= 1 without lattice structure) or constant streaming.
    We score the fraction of gaps that land within tolerance of the
    dominant gap or its small integer multiples.
    """

    def __init__(
        self,
        min_events: int = 24,
        tolerance: float = 0.18,
        lattice_fraction: float = 0.7,
    ):
        self.min_events = min_events
        self.tolerance = tolerance
        self.lattice_fraction = lattice_fraction

    def score(self, monitor: EventMonitor, line: int, now: float) -> tuple[float, str | None]:
        activity = monitor.lines[line]
        activity.prune(now)
        times = np.asarray(activity.downgrades, dtype=float)
        if times.size < self.min_events:
            return 0.0, None
        gaps = np.diff(np.sort(times))
        gaps = gaps[gaps > 0]
        if gaps.size < self.min_events - 1:
            return 0.0, None
        base = float(np.median(gaps))
        if base <= 0:
            return 0.0, None
        ratios = gaps / base
        nearest = np.round(ratios)
        on_lattice = (
            (nearest >= 1)
            & (nearest <= 8)
            & (np.abs(ratios - nearest) <= self.tolerance * nearest)
        )
        fraction = float(np.mean(on_lattice))
        if fraction < self.lattice_fraction:
            return 0.0, None
        return fraction, (
            f"slot-quantized modulation (lattice fit {fraction:.0%}, "
            f"base {base:.0f} cycles)"
        )


class ChannelDetector:
    """Combines the three signature detectors over an EventMonitor."""

    def __init__(
        self,
        monitor: EventMonitor,
        flush_storm: FlushStormDetector | None = None,
        ping_pong: PingPongDetector | None = None,
        modulation: ModulationDetector | None = None,
        flag_threshold: float = 1.0,
    ):
        self.monitor = monitor
        self.flush_storm = flush_storm or FlushStormDetector()
        self.ping_pong = ping_pong or PingPongDetector()
        self.modulation = modulation or ModulationDetector()
        self.flag_threshold = flag_threshold

    def score_all(self, now: float) -> dict[int, tuple[float, tuple[str, ...]]]:
        """Raw combined score and reasons for every monitored line.

        Unthresholded: lines scoring below ``flag_threshold`` appear
        too (ROC sweeps need the sub-threshold mass).  :meth:`scan` is
        this plus the flag filter.
        """
        scores: dict[int, tuple[float, tuple[str, ...]]] = {}
        for line in list(self.monitor.lines):
            total = 0.0
            reasons = []
            for detector in (self.flush_storm, self.ping_pong,
                             self.modulation):
                score, reason = detector.score(self.monitor, line, now)
                total += score
                if reason:
                    reasons.append(reason)
            scores[line] = (total, tuple(reasons))
        return scores

    def scan(self, now: float) -> list[Detection]:
        """Score every monitored line; return flagged ones, worst first."""
        detections = []
        for line, (total, reasons) in self.score_all(now).items():
            if total >= self.flag_threshold and reasons:
                activity = self.monitor.lines[line]
                detections.append(Detection(
                    line=line,
                    score=total,
                    flush_rate=activity.flush_rate(now),
                    downgrade_rate=activity.downgrade_rate(now),
                    cores=frozenset(activity.touching_cores(now)),
                    reasons=tuple(reasons),
                ))
        detections.sort(key=lambda d: -d.score)
        return detections

"""Coherence-event telemetry: the raw signal available to a defender.

A hardware/hypervisor defender cannot read processes' minds, but it can
observe coherence traffic: flushes per line, ownership downgrades
(E/M -> S forwarding services), and which cores touch which lines.  The
:class:`EventMonitor` taps the machine's access API and aggregates those
observations per line in sliding windows — the substrate the detectors
in :mod:`repro.detection.detector` consume.

Memory is bounded by construction: every per-line series is pruned to
the sliding window as events are recorded (not only when rates are
queried), and lines that go idle for :attr:`EventMonitor.idle_windows`
windows are evicted from the table entirely.  A monitor left attached
to an arbitrarily long feed therefore retains O(lines active within the
decay horizon x events per window) state — the property the streaming
detector (:mod:`repro.detection.streaming`) builds on, and a latent
leak for long offline runs before it was enforced here.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.mem.cacheline import line_addr
from repro.mem.hierarchy import Machine
from repro.sim.events import AccessPath

#: Service paths that mean an owner was forced to forward and downgrade:
#: the E->S transition the covert channel manufactures constantly.
DOWNGRADE_PATHS = (AccessPath.LOCAL_EXCL, AccessPath.REMOTE_EXCL)

#: Idle-line decay horizon: a line with no events for this many windows
#: is dropped from the table (it cannot score — every rate is zero).
DEFAULT_IDLE_WINDOWS = 8.0

#: How often (in recorded events) the monitor sweeps for idle lines.
_SWEEP_INTERVAL = 2048


@dataclass
class LineActivity:
    """Sliding-window activity for one cache line.

    The ``record_*`` methods are the write API: they append and prune in
    the same step, so the deques never hold more than one window of
    events no matter how long the feed runs, and the per-core load
    counts stay incrementally consistent with the ``loads`` deque
    (set-of-cores queries are O(distinct cores), not O(loads)).
    """

    window: float
    flushes: deque = field(default_factory=deque)           # times
    downgrades: deque = field(default_factory=deque)        # times
    loads: deque = field(default_factory=deque)             # (time, core)
    #: Loads per core currently inside the window (incrementally
    #: maintained; keys with zero count are removed).
    core_counts: dict[int, int] = field(default_factory=dict)
    #: Timestamp of the newest recorded event (idle-eviction clock).
    last_event: float = 0.0

    def record_flush(self, now: float) -> None:
        """Record one flush at *now* and prune the window."""
        self.flushes.append(now)
        self.last_event = now
        self.prune(now)

    def record_load(self, now: float, core: int, downgrade: bool) -> None:
        """Record one load (and possibly a downgrade) and prune."""
        self.loads.append((now, core))
        self.core_counts[core] = self.core_counts.get(core, 0) + 1
        if downgrade:
            self.downgrades.append(now)
        self.last_event = now
        self.prune(now)

    def prune(self, now: float) -> None:
        """Drop events older than the window."""
        cutoff = now - self.window
        for series in (self.flushes, self.downgrades):
            while series and series[0] < cutoff:
                series.popleft()
        while self.loads and self.loads[0][0] < cutoff:
            _t, core = self.loads.popleft()
            remaining = self.core_counts.get(core, 0) - 1
            if remaining > 0:
                self.core_counts[core] = remaining
            else:
                self.core_counts.pop(core, None)

    def flush_rate(self, now: float) -> float:
        """Flushes per million cycles over the window."""
        self.prune(now)
        return len(self.flushes) / self.window * 1e6

    def downgrade_rate(self, now: float) -> float:
        """Ownership downgrades per million cycles over the window."""
        self.prune(now)
        return len(self.downgrades) / self.window * 1e6

    def touching_cores(self, now: float) -> set[int]:
        """Cores that loaded the line within the window.

        O(distinct cores) via the incremental counts when every load
        went through :meth:`record_load`; falls back to scanning the
        deque for writers that append to ``loads`` directly.
        """
        self.prune(now)
        if sum(self.core_counts.values()) == len(self.loads):
            return set(self.core_counts)
        return {core for _t, core in self.loads}

    def tracked_events(self) -> int:
        """Retained series entries (the line's memory footprint)."""
        return len(self.flushes) + len(self.downgrades) + len(self.loads)


class EventMonitor:
    """Taps a machine and aggregates per-line coherence telemetry.

    Attach with :meth:`attach`; afterwards every load/flush on the
    machine is recorded.  Only lines that ever see a flush are tracked
    in detail (flushes are rare in benign workloads, so this bounds the
    telemetry cost the way a real filter would), and lines idle for
    ``idle_windows`` windows are evicted — including from the flushed
    filter, so a long-dormant line starts fresh at its next flush.
    """

    def __init__(
        self,
        machine: Machine,
        window: float = 400_000.0,
        idle_windows: float = DEFAULT_IDLE_WINDOWS,
    ):
        self.machine = machine
        self.window = window
        self.idle_windows = idle_windows
        self.lines: dict[int, LineActivity] = defaultdict(
            lambda: LineActivity(window=self.window)
        )
        self._flushed_lines: set[int] = set()
        self._attached = False
        self._orig_load = None
        self._orig_flush = None
        self.events_seen = 0
        self._next_sweep = _SWEEP_INTERVAL

    def attach(self) -> None:
        """Start observing the machine (idempotent)."""
        if self._attached:
            return
        self._attached = True
        self._orig_load = self.machine.load
        self._orig_flush = self.machine.flush

        def load(core_id: int, paddr: int, now: float = 0.0):
            value, latency, path = self._orig_load(core_id, paddr, now)
            self._on_load(core_id, paddr, now, path)
            return value, latency, path

        def flush(core_id: int, paddr: int, now: float = 0.0):
            latency = self._orig_flush(core_id, paddr, now)
            self._on_flush(core_id, paddr, now)
            return latency

        self.machine.load = load
        self.machine.flush = flush

    def detach(self) -> None:
        """Stop observing (restores the machine's methods)."""
        if not self._attached:
            return
        self.machine.load = self._orig_load
        self.machine.flush = self._orig_flush
        self._attached = False

    def _on_flush(self, core_id: int, paddr: int, now: float) -> None:
        base = line_addr(paddr)
        self._flushed_lines.add(base)
        self.lines[base].record_flush(now)
        self._note_event(now)

    def _on_load(
        self, core_id: int, paddr: int, now: float, path: AccessPath
    ) -> None:
        base = line_addr(paddr)
        if base not in self._flushed_lines:
            return
        self.lines[base].record_load(
            now, core_id, downgrade=path in DOWNGRADE_PATHS
        )
        self._note_event(now)

    def _note_event(self, now: float) -> None:
        """Amortized idle-line sweep, every ``_SWEEP_INTERVAL`` events."""
        self.events_seen += 1
        if self.events_seen >= self._next_sweep:
            self._next_sweep = self.events_seen + _SWEEP_INTERVAL
            self.evict_idle(now)

    def evict_idle(self, now: float) -> int:
        """Drop lines idle for ``idle_windows`` windows; returns count.

        An evicted line cannot change any detector verdict: all its
        in-window series are empty, so every rate is zero and no
        signature fires.  Dropping it from the flushed filter as well
        means tracking restarts only at its next flush — the same
        cold-start rule a freshly attached monitor applies.
        """
        horizon = now - self.idle_windows * self.window
        stale = [
            base for base, activity in self.lines.items()
            if activity.last_event < horizon
        ]
        for base in stale:
            del self.lines[base]
            self._flushed_lines.discard(base)
        return len(stale)

    def tracked_events(self) -> int:
        """Total retained series entries across all tracked lines."""
        return sum(a.tracked_events() for a in self.lines.values())

    def hot_lines(self, now: float, min_flush_rate: float = 10.0) -> list[int]:
        """Lines whose flush rate exceeds *min_flush_rate* per Mcycle."""
        out = []
        for base, activity in self.lines.items():
            if activity.flush_rate(now) >= min_flush_rate:
                out.append(base)
        return out

"""Coherence-event telemetry: the raw signal available to a defender.

A hardware/hypervisor defender cannot read processes' minds, but it can
observe coherence traffic: flushes per line, ownership downgrades
(E/M -> S forwarding services), and which cores touch which lines.  The
:class:`EventMonitor` taps the machine's access API and aggregates those
observations per line in sliding windows — the substrate the detectors
in :mod:`repro.detection.detector` consume.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.mem.cacheline import line_addr
from repro.mem.hierarchy import Machine
from repro.sim.events import AccessPath


@dataclass
class LineActivity:
    """Sliding-window activity for one cache line."""

    window: float
    flushes: deque = field(default_factory=deque)           # times
    downgrades: deque = field(default_factory=deque)        # times
    loads: deque = field(default_factory=deque)             # (time, core)

    def prune(self, now: float) -> None:
        """Drop events older than the window."""
        cutoff = now - self.window
        for series in (self.flushes, self.downgrades):
            while series and series[0] < cutoff:
                series.popleft()
        while self.loads and self.loads[0][0] < cutoff:
            self.loads.popleft()

    def flush_rate(self, now: float) -> float:
        """Flushes per million cycles over the window."""
        self.prune(now)
        return len(self.flushes) / self.window * 1e6

    def downgrade_rate(self, now: float) -> float:
        """Ownership downgrades per million cycles over the window."""
        self.prune(now)
        return len(self.downgrades) / self.window * 1e6

    def touching_cores(self, now: float) -> set[int]:
        """Cores that loaded the line within the window."""
        self.prune(now)
        return {core for _t, core in self.loads}


class EventMonitor:
    """Taps a machine and aggregates per-line coherence telemetry.

    Attach with :meth:`attach`; afterwards every load/flush on the
    machine is recorded.  Only lines that ever see a flush are tracked
    in detail (flushes are rare in benign workloads, so this bounds the
    telemetry cost the way a real filter would).
    """

    def __init__(self, machine: Machine, window: float = 400_000.0):
        self.machine = machine
        self.window = window
        self.lines: dict[int, LineActivity] = defaultdict(
            lambda: LineActivity(window=self.window)
        )
        self._flushed_lines: set[int] = set()
        self._attached = False
        self._orig_load = None
        self._orig_flush = None

    def attach(self) -> None:
        """Start observing the machine (idempotent)."""
        if self._attached:
            return
        self._attached = True
        self._orig_load = self.machine.load
        self._orig_flush = self.machine.flush

        def load(core_id: int, paddr: int, now: float = 0.0):
            value, latency, path = self._orig_load(core_id, paddr, now)
            self._on_load(core_id, paddr, now, path)
            return value, latency, path

        def flush(core_id: int, paddr: int, now: float = 0.0):
            latency = self._orig_flush(core_id, paddr, now)
            self._on_flush(core_id, paddr, now)
            return latency

        self.machine.load = load
        self.machine.flush = flush

    def detach(self) -> None:
        """Stop observing (restores the machine's methods)."""
        if not self._attached:
            return
        self.machine.load = self._orig_load
        self.machine.flush = self._orig_flush
        self._attached = False

    def _on_flush(self, core_id: int, paddr: int, now: float) -> None:
        base = line_addr(paddr)
        self._flushed_lines.add(base)
        self.lines[base].flushes.append(now)

    def _on_load(
        self, core_id: int, paddr: int, now: float, path: AccessPath
    ) -> None:
        base = line_addr(paddr)
        if base not in self._flushed_lines:
            return
        activity = self.lines[base]
        activity.loads.append((now, core_id))
        if path in (AccessPath.LOCAL_EXCL, AccessPath.REMOTE_EXCL):
            # An owner was forced to forward and downgrade: the E->S
            # transition the covert channel manufactures constantly.
            activity.downgrades.append(now)

    def hot_lines(self, now: float, min_flush_rate: float = 10.0) -> list[int]:
        """Lines whose flush rate exceeds *min_flush_rate* per Mcycle."""
        out = []
        for base, activity in self.lines.items():
            if activity.flush_rate(now) >= min_flush_rate:
                out.append(base)
        return out

"""Detection of coherence-state covert channels (defense extension).

The paper closes by motivating defenses against coherence-protocol
exploits; this package implements the detection side: per-line
coherence-event telemetry (:mod:`~repro.detection.events`) and three
signature detectors — flush storms, ownership ping-pong, slot-quantized
modulation — combined in
:class:`~repro.detection.detector.ChannelDetector`.
"""

from repro.detection.detector import (
    ChannelDetector,
    Detection,
    FlushStormDetector,
    ModulationDetector,
    PingPongDetector,
)
from repro.detection.events import EventMonitor, LineActivity

__all__ = [
    "ChannelDetector",
    "Detection",
    "EventMonitor",
    "FlushStormDetector",
    "LineActivity",
    "ModulationDetector",
    "PingPongDetector",
]

"""Detection of coherence-state covert channels (defense extension).

The paper closes by motivating defenses against coherence-protocol
exploits; this package implements the detection side: per-line
coherence-event telemetry (:mod:`~repro.detection.events`) and three
signature detectors — flush storms, ownership ping-pong, slot-quantized
modulation — combined in
:class:`~repro.detection.detector.ChannelDetector` for offline batches
and in :class:`~repro.detection.streaming.StreamingDetector` for the
live ``repro.obs`` trace feed (bounded memory, online ROC via
:class:`~repro.detection.streaming.OnlineRoc`, proven equivalent to
the batch path by ``tests/test_streaming_detection.py``).
"""

from repro.detection.detector import (
    ChannelDetector,
    Detection,
    FlushStormDetector,
    ModulationDetector,
    PingPongDetector,
)
from repro.detection.events import EventMonitor, LineActivity
from repro.detection.streaming import (
    OnlineRoc,
    StreamingDetector,
    TraceMonitor,
)

__all__ = [
    "ChannelDetector",
    "Detection",
    "EventMonitor",
    "FlushStormDetector",
    "LineActivity",
    "ModulationDetector",
    "OnlineRoc",
    "PingPongDetector",
    "StreamingDetector",
    "TraceMonitor",
]

"""Streaming detection over the live ``repro.obs`` trace feed.

The offline path (:class:`~repro.detection.detector.ChannelDetector`
over an attached :class:`~repro.detection.events.EventMonitor`) scores
a finished batch.  A deployable monitor must classify the
coherence-event stream *as it happens*, with memory that does not grow
with feed length.  This module provides that:

* :class:`TraceMonitor` — an :class:`EventMonitor` that consumes
  :class:`~repro.obs.TraceEvent` records (the ``"flush"``/``"load"``
  events a :class:`~repro.obs.MachineTap` emits) instead of wrapping a
  machine, so one interposition layer feeds recorder, exporters and
  detectors alike;
* :class:`StreamingDetector` — a :data:`~repro.obs.recorder.TraceSink`
  that subscribes to a session's :class:`~repro.obs.TraceRecorder`,
  maintains windowed per-line rates and incremental core sets (bounded
  by the window + idle-line decay, inherited from ``EventMonitor``),
  runs periodic interim scans for alarm latency, and — fed one event at
  a time — produces exactly the detections the offline batch path
  produces on the full feed;
* :class:`OnlineRoc` — a fixed-bin score histogram from which ROC
  points and AUC are computed incrementally; because only bin counts
  are kept, the curve is invariant to sample order and chunking and
  identical to the offline batch computation on the same scores.

Equivalence with the offline path is locked by
``tests/test_streaming_detection.py``: same detections, same scores,
same ROC, with peak tracked state asserted O(window).
"""

from __future__ import annotations

from repro.detection.detector import (
    ChannelDetector,
    Detection,
    FlushStormDetector,
    ModulationDetector,
    PingPongDetector,
)
from repro.detection.events import (
    DEFAULT_IDLE_WINDOWS,
    DOWNGRADE_PATHS,
    EventMonitor,
)
from repro.obs.recorder import TraceEvent

#: Trace-event names (service paths) that are ownership downgrades —
#: the string form of :data:`repro.detection.events.DOWNGRADE_PATHS`,
#: since :class:`~repro.obs.MachineTap` names load events by path value.
DOWNGRADE_NAMES = frozenset(path.value for path in DOWNGRADE_PATHS)

#: Default number of fixed score bins in :class:`OnlineRoc`.
ROC_BINS = 64

#: Default score ceiling for the histogram: three detectors contribute
#: at most ~1.0 each, so combined scores live in [0, 3]; the margin
#: keeps future detectors from silently saturating the top bin.
ROC_MAX_SCORE = 4.0


class OnlineRoc:
    """ROC curve accumulated one labeled score at a time.

    Scores are counted into ``bins`` fixed-width bins over
    ``[0, max_score)`` (out-of-range scores clamp to the edge bins), a
    positive and a negative histogram.  ROC points are read off the
    cumulative counts from the top bin down — each bin edge is one
    candidate threshold — so the curve depends only on the counts,
    never on arrival order or chunking, and matches the offline batch
    computation (:meth:`from_samples`) exactly.
    """

    __slots__ = ("bins", "max_score", "pos", "neg")

    def __init__(self, bins: int = ROC_BINS, max_score: float = ROC_MAX_SCORE):
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if max_score <= 0:
            raise ValueError(f"max_score must be > 0, got {max_score}")
        self.bins = bins
        self.max_score = max_score
        self.pos = [0] * bins
        self.neg = [0] * bins

    @classmethod
    def from_samples(
        cls,
        samples,
        bins: int = ROC_BINS,
        max_score: float = ROC_MAX_SCORE,
    ) -> "OnlineRoc":
        """Batch constructor from ``(score, is_positive)`` pairs."""
        roc = cls(bins=bins, max_score=max_score)
        for score, positive in samples:
            roc.add(score, positive)
        return roc

    def _bin(self, score: float) -> int:
        index = int(score / self.max_score * self.bins)
        return min(max(index, 0), self.bins - 1)

    def add(self, score: float, positive: bool) -> None:
        """Count one labeled score."""
        (self.pos if positive else self.neg)[self._bin(score)] += 1

    def merge(self, other: "OnlineRoc") -> None:
        """Fold another histogram with identical binning into this one."""
        if (other.bins, other.max_score) != (self.bins, self.max_score):
            raise ValueError("cannot merge OnlineRoc with different binning")
        for b in range(self.bins):
            self.pos[b] += other.pos[b]
            self.neg[b] += other.neg[b]

    @property
    def positives(self) -> int:
        return sum(self.pos)

    @property
    def negatives(self) -> int:
        return sum(self.neg)

    def points(self) -> list[tuple[float, float]]:
        """ROC points ``(fpr, tpr)``, threshold descending from +inf.

        Starts at ``(0, 0)`` (threshold above every bin) and ends at
        ``(1, 1)`` once any samples exist; with an empty side the
        missing rate reads 0.0.
        """
        total_pos = self.positives
        total_neg = self.negatives
        pts = [(0.0, 0.0)]
        tp = fp = 0
        for b in range(self.bins - 1, -1, -1):
            tp += self.pos[b]
            fp += self.neg[b]
            pts.append((
                fp / total_neg if total_neg else 0.0,
                tp / total_pos if total_pos else 0.0,
            ))
        return pts

    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal over the bin edges)."""
        pts = self.points()
        area = 0.0
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            area += (x1 - x0) * (y0 + y1) / 2.0
        return area

    def to_json(self) -> dict:
        """JSON-plain form (counts only — merges/rendering downstream)."""
        return {
            "bins": self.bins,
            "max_score": self.max_score,
            "pos": list(self.pos),
            "neg": list(self.neg),
        }


class TraceMonitor(EventMonitor):
    """Per-line telemetry aggregated from trace events, not a machine.

    Consumes the ``"flush"`` and ``"load"`` events a
    :class:`~repro.obs.MachineTap` emits — same filter (only
    ever-flushed lines tracked in detail), same downgrade rule (E-band
    service paths), same bounded windows — so detectors running on the
    trace feed see the identical per-line state an
    :class:`EventMonitor` wrapping the machine would build.
    """

    def __init__(
        self,
        window: float = 400_000.0,
        idle_windows: float = DEFAULT_IDLE_WINDOWS,
    ):
        super().__init__(
            machine=None, window=window, idle_windows=idle_windows
        )

    def attach(self) -> None:  # pragma: no cover - guard
        raise TypeError(
            "TraceMonitor has no machine to attach to; feed it trace "
            "events via consume()"
        )

    def consume(self, event: TraceEvent) -> None:
        """Fold one trace event into the per-line windows."""
        category = event.category
        if category == "flush":
            line = event.data["line"]
            self._flushed_lines.add(line)
            self.lines[line].record_flush(event.ts)
            self._note_event(event.ts)
        elif category == "load":
            line = event.data["line"]
            if line in self._flushed_lines:
                self.lines[line].record_load(
                    event.ts,
                    event.data["core"],
                    downgrade=event.name in DOWNGRADE_NAMES,
                )
                self._note_event(event.ts)


class StreamingDetector:
    """Online covert-channel detection over a live trace feed.

    A :data:`~repro.obs.recorder.TraceSink`: subscribe it to a
    recorder (``session.recorder.subscribe(detector)``) or call it /
    :meth:`consume` with events replayed from anywhere.  State is
    bounded — sliding windows plus idle-line decay in the underlying
    :class:`TraceMonitor` — so it can run on an unbounded feed.

    Fed the same events, :meth:`scan` returns exactly what the offline
    :class:`~repro.detection.detector.ChannelDetector` returns on the
    batch (the detectors and per-line state are the same code); the
    streaming additions are incremental: interim scans every
    ``scan_interval`` cycles record the first alarm per line (detection
    latency), and :attr:`peak_tracked` tracks the high-water mark of
    retained state for the bounded-memory gate.
    """

    def __init__(
        self,
        *,
        window: float = 400_000.0,
        idle_windows: float = DEFAULT_IDLE_WINDOWS,
        flush_storm: FlushStormDetector | None = None,
        ping_pong: PingPongDetector | None = None,
        modulation: ModulationDetector | None = None,
        flag_threshold: float = 1.0,
        scan_interval: float | None = None,
    ):
        self.monitor = TraceMonitor(window=window, idle_windows=idle_windows)
        self.detector = ChannelDetector(
            self.monitor,
            flush_storm=flush_storm,
            ping_pong=ping_pong,
            modulation=modulation,
            flag_threshold=flag_threshold,
        )
        self.scan_interval = scan_interval
        self.clock = 0.0
        self.events = 0
        #: line -> (timestamp, score) at the first interim scan that
        #: flagged it (bounded: one entry per line ever flagged).
        self.alarms: dict[int, tuple[float, float]] = {}
        #: High-water mark of retained series entries, sampled at scans.
        self.peak_tracked = 0
        self._next_scan = scan_interval

    # -- feeding ------------------------------------------------------

    def __call__(self, event: TraceEvent) -> None:
        """TraceSink entry point."""
        self.consume(event)

    def consume(self, event: TraceEvent) -> None:
        """Fold one event; run an interim scan at each interval edge."""
        self.events += 1
        self.monitor.consume(event)
        if event.ts > self.clock:
            self.clock = event.ts
        if self._next_scan is not None and self.clock >= self._next_scan:
            # Catch up past quiet gaps without scanning once per
            # skipped interval.
            interval = self.scan_interval
            while self._next_scan <= self.clock:
                self._next_scan += interval
            self._interim_scan(self.clock)

    def consume_many(self, events) -> None:
        """Fold a chunk of events (identical outcome to one at a time)."""
        for event in events:
            self.consume(event)

    # -- querying -----------------------------------------------------

    def _interim_scan(self, now: float) -> None:
        self.peak_tracked = max(self.peak_tracked, self.monitor.tracked_events())
        for detection in self.detector.scan(now):
            if detection.line not in self.alarms:
                self.alarms[detection.line] = (now, detection.score)

    def scan(self, now: float | None = None) -> list[Detection]:
        """Current detections — the offline ``ChannelDetector.scan``."""
        now = self.clock if now is None else now
        self.peak_tracked = max(self.peak_tracked, self.monitor.tracked_events())
        detections = self.detector.scan(now)
        for detection in detections:
            if detection.line not in self.alarms:
                self.alarms[detection.line] = (now, detection.score)
        return detections

    def score_all(self, now: float | None = None):
        """Raw per-line scores (see ``ChannelDetector.score_all``)."""
        return self.detector.score_all(self.clock if now is None else now)

    def first_alarm(self, line: int) -> float | None:
        """Timestamp of the first scan that flagged *line*, if any."""
        entry = self.alarms.get(line)
        return entry[0] if entry else None

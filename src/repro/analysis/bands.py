"""Unsupervised latency-band discovery.

An attacker without labeled calibration data can still find the latency
bands: sort the observed latencies and split at unusually large gaps.
This is the statistical counterpart of eyeballing Figure 2's CDF steps,
and the tests use it to confirm the four coherence bands really are
discoverable from raw timing alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.calibration import Band


@dataclass(frozen=True)
class DiscoveredBands:
    """Outcome of unsupervised band discovery."""

    bands: tuple[Band, ...]

    @property
    def count(self) -> int:
        """How many distinct bands were found."""
        return len(self.bands)

    def classify(self, latency: float) -> int | None:
        """Index of the band containing *latency*, or None."""
        for i, band in enumerate(self.bands):
            if band.contains(latency):
                return i
        return None


def discover_bands(
    samples: np.ndarray,
    min_gap: float = 14.0,
    min_cluster: int = 8,
    trim: float = 1.0,
) -> DiscoveredBands:
    """Split sorted latencies into bands at gaps larger than *min_gap*.

    Parameters
    ----------
    samples:
        Raw latency observations (mixed bands).
    min_gap:
        Minimum cycle gap between consecutive sorted samples that starts
        a new band.
    min_cluster:
        Clusters smaller than this are discarded as outliers (jitter
        tails).
    trim:
        Percentile trimmed from each side of every cluster when forming
        its band interval.
    """
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        return DiscoveredBands(bands=())
    splits = np.where(np.diff(data) > min_gap)[0]
    clusters = np.split(data, splits + 1)
    bands = []
    for i, cluster in enumerate(clusters):
        if cluster.size < min_cluster:
            continue
        lo = float(np.percentile(cluster, trim))
        hi = float(np.percentile(cluster, 100 - trim))
        bands.append(Band(label=f"band{i}", lo=lo - 2.0, hi=hi + 2.0))
    return DiscoveredBands(bands=tuple(bands))

"""Trace export and text timelines for transmissions.

Figures 7 and 11 are scatter plots of timed-load latencies; these
helpers export the equivalent raw data (CSV) and render terminal
timelines so a run's trace can be inspected, archived and diffed.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.channel.decoder import Sample


def samples_to_csv(samples: Sequence[Sample]) -> str:
    """Serialize spy samples as CSV text (timestamp, latency, label, path)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(("timestamp", "latency", "label", "path"))
    for sample in samples:
        # A path is usually an AccessPath enum, but round-tripped traces
        # (samples_from_csv, legacy pickles) carry plain strings — emit
        # those as-is instead of collapsing them to "".
        path = sample.path
        writer.writerow((
            f"{sample.timestamp:.1f}",
            f"{sample.latency:.2f}",
            sample.label,
            "" if path is None else getattr(path, "value", str(path)),
        ))
    return out.getvalue()


def samples_from_csv(text: str) -> list[Sample]:
    """Parse CSV text produced by :func:`samples_to_csv`.

    The path column is restored as a plain string (sufficient for
    analysis; the enum identity is not needed offline).
    """
    reader = csv.DictReader(io.StringIO(text))
    samples = []
    for row in reader:
        samples.append(Sample(
            timestamp=float(row["timestamp"]),
            latency=float(row["latency"]),
            label=row["label"],
            path=row["path"] or None,
        ))
    return samples


def save_trace(path: str, samples: Sequence[Sample]) -> None:
    """Write a trace CSV to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(samples_to_csv(samples))


def load_trace(path: str) -> list[Sample]:
    """Read a trace CSV from *path*."""
    with open(path, encoding="utf-8") as handle:
        return samples_from_csv(handle.read())


def ascii_timeline(
    samples: Sequence[Sample],
    lo: float = 60.0,
    hi: float = 360.0,
    width: int = 60,
    max_rows: int | None = None,
) -> str:
    """Render samples as a latency-vs-time dot plot (Figure 7 in text).

    One row per sample; the column position encodes latency, the glyph
    encodes the classified label ('*' = communication band, 'o' =
    boundary band, '.' = unclassified).
    """
    rows = []
    glyphs = {"c": "*", "b": "o"}
    shown = list(samples)[:max_rows] if max_rows else list(samples)
    span = max(1e-9, hi - lo)
    for sample in shown:
        column = int((min(hi, max(lo, sample.latency)) - lo) / span * (width - 1))
        glyph = glyphs.get(sample.label, ".")
        rows.append(
            f"{sample.timestamp:12.0f} |"
            + " " * column + glyph + " " * (width - 1 - column)
            + f"| {sample.latency:6.1f}"
        )
    header = (
        f"{'cycles':>12s} |{'latency ' + str(lo) + ' -> ' + str(hi):^{width}s}|"
    )
    return "\n".join([header, *rows])

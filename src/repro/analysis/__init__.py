"""Analysis utilities: CDFs, band discovery, capacity, text reporting."""

from repro.analysis.bands import DiscoveredBands, discover_bands
from repro.analysis.capacity import (
    blahut_arimoto,
    capacity_kbps,
    confusion_matrix,
    mutual_information,
)
from repro.analysis.cdf import (
    EmpiricalCdf,
    band_separation,
    empirical_cdf,
    overlap_fraction,
)
from repro.analysis.trace import (
    ascii_timeline,
    load_trace,
    samples_from_csv,
    samples_to_csv,
    save_trace,
)
from repro.analysis.reporting import (
    ascii_cdf,
    ascii_histogram,
    ascii_table,
    bitstring,
    pct,
)

__all__ = [
    "DiscoveredBands",
    "EmpiricalCdf",
    "ascii_cdf",
    "ascii_histogram",
    "ascii_table",
    "ascii_timeline",
    "load_trace",
    "samples_from_csv",
    "samples_to_csv",
    "save_trace",
    "band_separation",
    "bitstring",
    "blahut_arimoto",
    "capacity_kbps",
    "confusion_matrix",
    "discover_bands",
    "empirical_cdf",
    "mutual_information",
    "overlap_fraction",
    "pct",
]

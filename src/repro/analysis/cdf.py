"""Empirical CDFs and latency-distribution summaries (Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical cumulative distribution function."""

    x: np.ndarray
    p: np.ndarray

    def at(self, value: float) -> float:
        """P(X <= value)."""
        return float(np.searchsorted(self.x, value, side="right") / len(self.x))

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        index = min(len(self.x) - 1, int(q * len(self.x)))
        return float(self.x[index])


def empirical_cdf(samples: np.ndarray) -> EmpiricalCdf:
    """Build the empirical CDF of a 1-D sample array."""
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ValueError("need at least one sample")
    p = np.arange(1, data.size + 1) / data.size
    return EmpiricalCdf(x=data, p=p)


def band_separation(first: np.ndarray, second: np.ndarray) -> float:
    """Gap between two latency distributions in pooled-sigma units.

    Positive values mean clean separation (the covert channel's
    prerequisite); the larger the value, the more robust the pair is to
    jitter — the effect behind Figure 8's per-scenario differences.
    """
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    lo, hi = (a, b) if np.median(a) <= np.median(b) else (b, a)
    gap = np.percentile(hi, 5) - np.percentile(lo, 95)
    pooled = np.sqrt((lo.std() ** 2 + hi.std() ** 2) / 2.0) or 1.0
    return float(gap / pooled)


def overlap_fraction(first: np.ndarray, second: np.ndarray) -> float:
    """Fraction of samples falling inside the other distribution's range."""
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    a_in_b = np.mean((a >= b.min()) & (a <= b.max()))
    b_in_a = np.mean((b >= a.min()) & (b <= a.max()))
    return float((a_in_b + b_in_a) / 2.0)

"""Plain-text reporting: tables, histograms and CDF sketches.

The experiment drivers print their figures/tables through these helpers
so every paper artifact renders in a terminal and diffs cleanly in CI.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_histogram(
    samples: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render a horizontal-bar histogram."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return "(no samples)"
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{lo:8.1f}-{hi:8.1f} |{bar} {count}")
    return "\n".join(lines)


def ascii_cdf(
    labeled_samples: dict[str, Sequence[float]],
    points: int = 12,
    title: str | None = None,
) -> str:
    """Render per-label CDF quantiles side by side (Figure 2 in text)."""
    lines = [title] if title else []
    qs = np.linspace(0.05, 0.95, points)
    header = "quantile | " + " | ".join(f"{k:>12s}" for k in labeled_samples)
    lines.append(header)
    lines.append("-" * len(header))
    arrays = {k: np.sort(np.asarray(list(v), dtype=float))
              for k, v in labeled_samples.items()}
    for q in qs:
        row = [f"{q:8.2f}"]
        for _k, arr in arrays.items():
            idx = min(arr.size - 1, int(q * arr.size))
            row.append(f"{arr[idx]:12.1f}")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def bitstring(bits: Sequence[int], group: int = 10) -> str:
    """Format a bit list as grouped 0/1 text (Figure 6 style)."""
    s = "".join(str(int(b)) for b in bits)
    return " ".join(s[i:i + group] for i in range(0, len(s), group))


def pct(value: float) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.1f}%"

"""Information-theoretic channel analysis.

Beyond raw-bit accuracy, a covert channel's quality is its *capacity*:
the mutual information achievable per symbol.  These helpers build a
confusion matrix from (sent, received) symbol streams, compute mutual
information, and run Blahut-Arimoto to find the capacity-achieving input
distribution — useful for comparing the binary scenarios against the
2-bit symbol channel of Section VIII-D.
"""

from __future__ import annotations

import numpy as np


def confusion_matrix(
    sent: list[int], received: list[int], n_symbols: int
) -> np.ndarray:
    """Row-normalized transition matrix P(received | sent).

    Streams are truncated to their common length (alignment slippage is
    treated as noise).  Rows that were never sent become uniform.
    """
    counts = np.zeros((n_symbols, n_symbols), dtype=float)
    for s, r in zip(sent, received):
        if 0 <= s < n_symbols and 0 <= r < n_symbols:
            counts[s, r] += 1.0
    row_sums = counts.sum(axis=1, keepdims=True)
    uniform = np.full(n_symbols, 1.0 / n_symbols)
    out = np.where(row_sums > 0, counts / np.maximum(row_sums, 1e-12), uniform)
    return out


def mutual_information(
    channel: np.ndarray, input_dist: np.ndarray | None = None
) -> float:
    """I(X;Y) in bits for transition matrix *channel* and input dist."""
    p_x = (
        np.full(channel.shape[0], 1.0 / channel.shape[0])
        if input_dist is None
        else np.asarray(input_dist, dtype=float)
    )
    joint = p_x[:, None] * channel
    p_y = joint.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (p_x[:, None] * p_y[None, :]), 1.0)
        info = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    return float(info.sum())


def blahut_arimoto(
    channel: np.ndarray,
    tolerance: float = 1e-9,
    max_iterations: int = 2_000,
) -> tuple[float, np.ndarray]:
    """Channel capacity (bits/symbol) and the optimal input distribution.

    Standard Blahut-Arimoto iteration on a discrete memoryless channel
    given by the row-stochastic matrix P(y|x).
    """
    channel = np.asarray(channel, dtype=float)
    n = channel.shape[0]
    p_x = np.full(n, 1.0 / n)
    capacity = 0.0
    for _ in range(max_iterations):
        p_y = p_x @ channel
        with np.errstate(divide="ignore", invalid="ignore"):
            log_ratio = np.where(
                channel > 0, np.log(channel / np.maximum(p_y, 1e-300)), 0.0
            )
        d = np.exp((channel * log_ratio).sum(axis=1))
        new_p = p_x * d
        new_p /= new_p.sum()
        new_capacity = float(np.log2((p_x * d).sum()))
        if abs(new_capacity - capacity) < tolerance:
            p_x = new_p
            capacity = new_capacity
            break
        p_x = new_p
        capacity = new_capacity
    return capacity, p_x


def capacity_kbps(
    channel: np.ndarray, symbols_per_second: float
) -> float:
    """Capacity in Kbits/s at a given symbol rate."""
    cap, _dist = blahut_arimoto(channel)
    return cap * symbols_per_second / 1e3

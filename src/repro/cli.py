"""Unified command-line interface: ``python -m repro <command>``.

Commands map to the experiment drivers plus a couple of conveniences::

    python -m repro list                 # what can I run?
    python -m repro fig8 --scenario ...  # any experiment by short name
    python -m repro fig8 --jobs 8        # fan the grid out over 8 workers
    python -m repro send 10110 --scenario RExclc-LSharedb
    python -m repro bands                # print calibrated latency bands

Experiment commands dispatch through
:data:`repro.experiments.REGISTRY` — every driver self-describes (name,
one-liner, ``build_spec``, ``render``) — and all of them accept the
shared runner options ``--jobs``, ``--no-cache``, ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.experiments import REGISTRY

#: Short command name -> experiments module name (derived from
#: :data:`REGISTRY`; kept for backwards compatibility).
EXPERIMENTS: dict[str, str] = {
    name: info.module for name, info in REGISTRY.items()
}


def cmd_list(_argv: list[str]) -> None:
    """Print the available commands."""
    print("experiments:")
    for name, info in REGISTRY.items():
        print(f"  {name:12s} {info.summary}")
        print(f"  {'':12s}   -> repro.experiments.{info.module}")
    print("utilities:")
    for name, (summary, _handler) in UTILITIES.items():
        if name != "list":
            print(f"  {name:12s} {summary}")
    print()
    print("experiment options: --jobs N  --no-cache  --cache-dir DIR")
    print("failure handling:   --retries N  --timeout S  --keep-going  "
          "--inject-faults")
    print("global flags:       --profile (cProfile)  --trace "
          "(structured tracing; also per-command via --trace or "
          "REPRO_TRACE=1)")


def cmd_send(argv: list[str]) -> None:
    """Transmit a bit string through a covert-channel session."""
    from repro.mem.protocols import PROTOCOLS

    parser = argparse.ArgumentParser(prog="repro send")
    parser.add_argument("bits", help="payload, e.g. 10110")
    parser.add_argument(
        "--scenario", default="LExclc-LSharedb",
        help="registered scenario name (Table I or matrix cell, e.g. "
             "moesi-ostate, dir-es, mesi-lru)",
    )
    parser.add_argument(
        "--protocol", default=None, choices=sorted(PROTOCOLS),
        help="coherence protocol override (registered protocols)",
    )
    parser.add_argument("--rate", type=float, default=None,
                        help="nominal Kbits/s")
    parser.add_argument("--noise", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--resync-attempts", type=int, default=2,
        help="handshake retries after a spy sync timeout (default: 2)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="R",
        help="inject simulation faults at R per million cycles "
             "(third-party touches, preemption, latency spikes)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the injected fault plan",
    )
    args = parser.parse_args(argv)

    from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
    from repro.errors import ConfigError

    payload = [int(c) for c in args.bits if c in "01"]
    if not payload:
        parser.error("payload must contain 0/1 characters")
    try:
        spec = resolve_spec(args.scenario, protocol=args.protocol)
    except ConfigError as exc:
        parser.error(str(exc))
    params = spec.default_params()
    if args.rate is not None:
        # An explicit 0 (or negative) must error, not be silently
        # ignored the way a falsy check would.
        if args.rate <= 0:
            parser.error(
                f"--rate must be a positive Kbit/s value, got {args.rate:g}"
            )
        params = params.at_rate(args.rate)
    faults = None
    if args.fault_rate > 0:
        from repro.faults import FaultPlan

        faults = FaultPlan.build_simulation(
            seed=args.fault_seed,
            rate_per_mcycle=args.fault_rate,
            window_cycles=params.slot_cycles * (len(payload) + 40),
            kinds=("third_party_touch", "preempt", "latency_spike"),
        )
        print(f"injecting {len(faults)} simulation fault(s)",
              file=sys.stderr)
    session = ChannelSession(SessionConfig(
        spec=spec,
        params=params,
        seed=args.seed,
        noise_threads=args.noise,
        resync_attempts=args.resync_attempts,
        faults=faults,
    ))
    result = session.transmit(payload)
    print(f"sent     {''.join(map(str, result.sent))}")
    print(f"received {''.join(map(str, result.received))}")
    line = (f"accuracy {result.accuracy * 100:.1f}%  "
            f"rate {result.achieved_rate_kbps:.0f} Kbit/s")
    if result.resyncs:
        line += f"  resyncs {result.resyncs}"
    print(line)


def cmd_bench(argv: list[str]) -> None:
    """Run the performance harness and emit a BENCH_<date>.json report."""
    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per benchmark; best wall time kept")
    parser.add_argument("--quick", action="store_true",
                        help="smaller payloads (CI smoke / sanity runs)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="report path (default: BENCH_<date>.json)")
    parser.add_argument("--no-write", action="store_true",
                        help="print the report without writing a file")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against a committed report and fail on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20, metavar="FRAC",
        help="allowed events/sec drop vs --baseline (default: 0.20)",
    )
    args = parser.parse_args(argv)

    from repro.bench import (
        check_regression,
        default_report_name,
        load_report,
        run_all,
        write_report,
    )

    report = run_all(repeats=args.repeats, quick=args.quick)
    bench = report["benchmarks"]
    micro = bench["engine_micro"]
    print(f"engine_micro  {micro['events_per_sec']:>12,.0f} events/s "
          f"({micro['events']} events, best of {args.repeats})")
    print(f"fig8_point    {bench['fig8_point']['wall_s']:>12.3f} s wall "
          f"(accuracy {bench['fig8_point']['accuracy']:.2f})")
    print(f"noise_point   {bench['noise_point']['wall_s']:>12.3f} s wall "
          f"(accuracy {bench['noise_point']['accuracy']:.2f})")
    grid = bench.get("grid_sweep")
    if grid:
        for mode, info in grid["modes"].items():
            speedup = (f"  ({info['speedup']:.2f}x)"
                       if "speedup" in info else "")
            print(f"grid_sweep    {info['points_per_sec']:>12.2f} points/s "
                  f"[{mode}]{speedup}")
        identity = "ok" if grid["bit_identical"] else "MISMATCH"
        print(f"grid_sweep    bit-identity {identity}; cache entries "
              f"{grid['cache_bytes'] / 1024:.0f} KiB v2 vs "
              f"{grid['cache_bytes_legacy'] / 1024:.0f} KiB legacy "
              f"(-{grid['cache_reduction']:.0%})")
    lane = bench.get("lane_sweep")
    if lane:
        for mode, info in lane["modes"].items():
            speedup = (f"  ({info['speedup_vs_chunked']:.2f}x)"
                       if "speedup_vs_chunked" in info else "")
            print(f"lane_sweep    {info['points_per_sec']:>12.2f} points/s "
                  f"[{mode}]{speedup}")
        identity = "ok" if lane["bit_identical"] else "MISMATCH"
        print(f"lane_sweep    bit-identity {identity}; best "
              f"{lane['speedup_vs_chunked']:.2f}x vs chunked "
              f"(lane width {lane['width']})")
    svc = bench.get("service_sweep")
    if svc:
        identity = "ok" if svc["bit_identical"] else "MISMATCH"
        print(f"service_sweep {svc['dedupe_ratio']:>12.2f}x dedupe "
              f"({svc['executed']} executed of {svc['submitted']} "
              f"submitted, {svc['coalesced']} coalesced)")
        print(f"service_sweep bit-identity {identity}; "
              f"{svc['speedup_vs_local']:.2f}x vs back-to-back local")
    trace = bench.get("trace_overhead")
    if trace:
        print(f"trace_overhead  disabled {trace['disabled_overhead']:+.1%}  "
              f"enabled {trace['enabled_overhead']:+.1%} "
              f"({trace['traced_events']} events)")
    streaming = bench.get("streaming_overhead")
    if streaming:
        print(f"streaming_overhead  disabled "
              f"{streaming['disabled_overhead']:+.1%}  "
              f"live {streaming['streaming_overhead']:+.1%}  "
              f"sink {streaming['sink_overhead']:+.1%} "
              f"({streaming['streamed_events']} events)")
    segment = bench.get("segment_overhead")
    if segment:
        print(f"segment_overhead  armed-idle {segment['overhead']:+.1%} "
              f"(baseline {segment['baseline_wall_s']:.3f} s)")
    if not args.no_write:
        out = write_report(report, args.output or default_report_name())
        print(f"wrote {out}")
    if args.baseline is not None:
        baseline = load_report(args.baseline)
        problems = check_regression(
            report, baseline, max_regression=args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            raise SystemExit(1)
        base_eps = baseline["benchmarks"]["engine_micro"]["events_per_sec"]
        print(f"no regression vs {args.baseline} "
              f"({micro['events_per_sec'] / base_eps:.2f}x baseline)")


def _parse_age(text: str) -> float:
    """Parse a ``--max-age`` value: seconds, or ``45m``/``12h``/``7d``."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in units:
        scale = units[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r}; use seconds or a s/m/h/d suffix "
            "(e.g. 3600, 45m, 12h, 7d)"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(f"age must be >= 0, got {text!r}")
    return value


def cmd_cache(argv: list[str]) -> None:
    """Inspect or prune the on-disk result cache."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="inspect (stats) or prune (gc) the result cache",
    )
    parser.add_argument(
        "action", choices=("stats", "gc"),
        help="stats: entry counts/bytes/schemas per generation; "
             "gc: delete entries keyed under stale version salts",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/results)",
    )
    parser.add_argument(
        "--max-age", type=_parse_age, default=None, metavar="AGE",
        help="with gc: also reap entries older than AGE — current "
             "generation included (checkpoint segments especially); "
             "seconds or s/m/h/d suffix (e.g. 12h, 7d)",
    )
    args = parser.parse_args(argv)

    from repro.runner.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        if args.max_age is not None:
            parser.error("--max-age only applies to gc")
        stats = cache.stats()
        print(f"cache root  {stats['root']}")
        print(f"active salt {stats['salt']}")
        print(f"entries     {stats['entries']}  "
              f"({stats['bytes'] / 1024:.1f} KiB)")
        if not stats["generations"]:
            print("(empty)")
        for name, info in sorted(stats["generations"].items()):
            mark = "  <- current" if info["current"] else "  (stale)"
            schemas = ", ".join(
                f"{schema}:{count}"
                for schema, count in sorted(info["schemas"].items())
            ) or "-"
            print(f"  {name:24s} {info['entries']:6d} entries  "
                  f"{info['bytes'] / 1024:9.1f} KiB  [{schemas}]{mark}")
        return
    removed, freed = cache.gc(max_age_seconds=args.max_age)
    print(f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
          f"({freed / 1024:.1f} KiB) from {cache.root}")


def cmd_checkpoint(argv: list[str]) -> None:
    """Inspect an exported checkpoint blob (manifest only)."""
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description="inspect a checkpoint blob written via "
                    "REPRO_CHECKPOINT_EXPORT (manifest only; the session "
                    "state is never unpickled)",
    )
    parser.add_argument(
        "action", choices=("inspect",),
        help="inspect: print the blob's manifest, size and digest",
    )
    parser.add_argument("path", help="checkpoint blob file")
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.checkpoint import inspect_blob
    from repro.errors import CheckpointError

    try:
        manifest = inspect_blob(Path(args.path).read_bytes())
    except (OSError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    width = max(len(key) for key in manifest)
    for key in sorted(manifest):
        print(f"{key:<{width}}  {manifest[key]}")


def cmd_trace(argv: list[str]) -> None:
    """Run one traced transmission and export its event stream."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="run a fixed-seed transmission with tracing on and "
                    "export the recorded event stream",
    )
    parser.add_argument(
        "action", choices=("export",),
        help="export: transmit once and write/print the trace",
    )
    parser.add_argument("--format", choices=("chrome", "text"),
                        default="chrome",
                        help="chrome: trace-event JSON loadable in "
                             "chrome://tracing / Perfetto; text: merged "
                             "event + sample timeline")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="output file (default: trace.json for "
                             "chrome, stdout for text)")
    parser.add_argument("--scenario", default="RExclc-LSharedb")
    from repro.mem.protocols import PROTOCOLS

    parser.add_argument(
        "--protocol", default=None, choices=sorted(PROTOCOLS),
        help="coherence protocol override (registered protocols)",
    )
    parser.add_argument("--bits", type=int, default=16,
                        help="payload length (alternating bits)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rate", type=float, default=None,
                        help="nominal Kbits/s")
    parser.add_argument("--calibration-samples", type=int, default=150)
    args = parser.parse_args(argv)

    from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
    from repro.errors import ConfigError
    from repro.obs import text_timeline, write_chrome_trace

    try:
        spec = resolve_spec(args.scenario, protocol=args.protocol)
    except ConfigError as exc:
        parser.error(str(exc))
    params = spec.default_params()
    if args.rate is not None:
        if args.rate <= 0:
            parser.error(
                f"--rate must be a positive Kbit/s value, got {args.rate:g}"
            )
        params = params.at_rate(args.rate)
    session = ChannelSession(SessionConfig(
        spec=spec,
        params=params,
        seed=args.seed,
        calibration_samples=args.calibration_samples,
        trace=True,
    ))
    payload = [i % 2 for i in range(max(1, args.bits))]
    result = session.transmit(payload)
    recorder = session.recorder
    print(f"transmitted {len(payload)} bits "
          f"(accuracy {result.accuracy * 100:.1f}%); "
          f"recorded {recorder.emitted} events "
          f"({recorder.dropped} dropped)", file=sys.stderr)
    if args.format == "chrome":
        out = write_chrome_trace(
            args.output or "trace.json", recorder, result.manifest
        )
        print(f"wrote {out}")
    else:
        timeline = text_timeline(recorder, samples=result.samples)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(timeline + "\n")
            print(f"wrote {args.output}")
        else:
            print(timeline)


def cmd_serve(argv: list[str]) -> None:
    """Run the experiment service in the foreground."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="host the experiment service: HTTP job API + shared "
                    "single-flight cache server + one warm worker pool "
                    "serving every submitted grid",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="HTTP job-API port (default: 8765; 0 = any)")
    parser.add_argument("--cache-port", type=int, default=0,
                        help="cache-server socket port (default: any free)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shared pool size (default: cpu count)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache root backing the index")
    parser.add_argument("--retries", type=int, default=0,
                        help="default per-point retry budget")
    parser.add_argument("--timeout", type=float, default=None,
                        help="default per-point wall-clock timeout (s)")
    args = parser.parse_args(argv)

    import asyncio
    import os

    from repro.runner import FailurePolicy, ResultCache
    from repro.service import ExperimentService

    workers = args.workers if args.workers else (os.cpu_count() or 2)
    service = ExperimentService(
        cache=ResultCache(args.cache_dir),
        host=args.host,
        http_port=args.port,
        cache_port=args.cache_port,
        workers=workers,
        policy=FailurePolicy(
            retries=args.retries, timeout=args.timeout, keep_going=True,
        ),
    )

    async def host() -> None:
        await service.start()
        http_host, http_port = service.host, service.http_port
        cache_host, cache_port = service.cache_server.address
        print(f"job API     http://{http_host}:{http_port}", file=sys.stderr)
        print(f"cache server {cache_host}:{cache_port}", file=sys.stderr)
        print(f"workers     {workers}  cache {service.cache.root}",
              file=sys.stderr)
        assert service._http_server is not None
        try:
            await service._http_server.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(host())
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)


def cmd_submit(argv: list[str]) -> None:
    """Submit a registered driver's grid to a running service."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="submit an experiment grid to 'repro serve' and "
                    "stream its JSON-lines progress events",
    )
    parser.add_argument("driver", help="registered driver name (see "
                                       "'repro list'), e.g. fig8")
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="driver build_spec parameter (repeatable); values parse as "
             "JSON when possible, else string",
    )
    parser.add_argument("--retries", type=int, default=None,
                        help="per-point retry budget for this job")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point wall-clock timeout (s)")
    parser.add_argument("--no-follow", action="store_true",
                        help="print the job id and exit (don't stream "
                             "events)")
    args = parser.parse_args(argv)

    import json

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    params = {}
    for item in args.param:
        key, sep, raw = item.partition("=")
        if not sep:
            parser.error(f"--param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw

    client = ServiceClient(args.url)
    try:
        payload: dict = {"driver": args.driver, "params": params}
        if args.retries is not None:
            payload["retries"] = args.retries
        if args.timeout is not None:
            payload["timeout"] = args.timeout
        job_id = client.submit_job(payload)
        print(job_id)
        if args.no_follow:
            return
        for event in client.events(job_id):
            print(json.dumps(event, sort_keys=True, separators=(",", ":")))
        manifest = client.job(job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    if manifest["status"] != "done":
        raise SystemExit(1)


def cmd_jobs(argv: list[str]) -> None:
    """List a running service's jobs and dedupe counters."""
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="show the service's jobs, and per-job or global "
                    "cache/dedupe counters",
    )
    parser.add_argument("job", nargs="?", default=None,
                        help="job id for a full manifest (default: list "
                             "all jobs + server stats)")
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    args = parser.parse_args(argv)

    import json

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.job is not None:
            print(json.dumps(client.job(args.job), indent=2, sort_keys=True))
            return
        jobs = client.jobs()
        if not jobs:
            print("(no jobs)")
        for job in jobs:
            print(f"{job['id']:10s} {job['status']:8s} "
                  f"{job['completed']:4d}/{job['total']:<4d} "
                  f"{job['experiment']}")
        stats = client.stats()
        cache = stats["cache"]
        print(f"cache: {cache['hits']} hits, {cache['published']} executed, "
              f"{cache['coalesced']} coalesced, "
              f"{cache['in_flight']} in flight")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)


def cmd_bands(argv: list[str]) -> None:
    """Calibrate and print the latency bands (Figure 2's summary)."""
    from repro.mem.protocols import PROTOCOLS

    parser = argparse.ArgumentParser(prog="repro bands")
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--protocol", default="mesi", choices=sorted(PROTOCOLS),
        help="coherence protocol to calibrate under",
    )
    parser.add_argument(
        "--coherence", default="snoop", choices=("snoop", "directory"),
        help="coherence topology (snoop bus or home-node directory)",
    )
    args = parser.parse_args(argv)

    from repro.channel.calibration import calibrate
    from repro.channel.config import LOWNED
    from repro.mem.hierarchy import Machine, MachineConfig
    from repro.sim.rng import RngStreams

    machine = Machine(
        MachineConfig(protocol=args.protocol, coherence=args.coherence),
        RngStreams(args.seed),
    )
    # MOESI machines get the owner-service band measured alongside the
    # paper's four pairs so the O channel's symbol is visible here too.
    extra = (LOWNED,) if args.protocol == "moesi" else ()
    bands, _raw = calibrate(machine, samples=args.samples, extra_pairs=extra)
    for pair, band in sorted(bands.bands.items(), key=lambda kv: kv[1].lo):
        print(f"{pair.notation:8s} [{band.lo:6.1f}, {band.hi:6.1f}] cycles")
    if bands.dram:
        print(f"{'dram':8s} [{bands.dram.lo:6.1f}, {bands.dram.hi:6.1f}] cycles")


#: Utility command name -> (one-liner, handler).
UTILITIES: dict[str, tuple[str, Callable[[list[str]], None]]] = {
    "list": ("print the available commands", cmd_list),
    "send": ("transmit a bit string over a chosen scenario", cmd_send),
    "bands": ("print the calibrated latency bands", cmd_bands),
    "bench": ("run the performance harness (BENCH_<date>.json)", cmd_bench),
    "cache": ("inspect or prune the on-disk result cache", cmd_cache),
    "checkpoint": ("inspect an exported checkpoint blob", cmd_checkpoint),
    "trace": ("run a traced transmission and export the events", cmd_trace),
    "serve": ("host the experiment service (job API + shared cache)",
              cmd_serve),
    "submit": ("submit a driver grid to a running service", cmd_submit),
    "jobs": ("list a service's jobs and dedupe counters", cmd_jobs),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns an exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--profile":
        # Global profiling mode: run the remaining command under
        # cProfile and print the hottest functions to stderr (see
        # PERFORMANCE.md).  Placed before command dispatch so any
        # command can be profiled unchanged.
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return main(argv[1:])
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("tottime").print_stats(25)
    if argv and argv[0] == "--trace":
        # Global tracing mode: every session and runner constructed by
        # the remaining command records structured events (repro.obs).
        # Propagated through the environment so worker processes and
        # cached-point keys are unaffected.
        import os

        os.environ["REPRO_TRACE"] = "1"
        return main(argv[1:])
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print()
        cmd_list([])
        return 0
    command, rest = argv[0], argv[1:]
    utility = UTILITIES.get(command)
    if utility is not None:
        utility[1](rest)
        return 0
    info = REGISTRY.get(command)
    if info is not None:
        info.main(rest)
        return 0
    print(f"unknown command {command!r}; try 'python -m repro list'",
          file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Unified command-line interface: ``python -m repro <command>``.

Commands map to the experiment drivers plus a couple of conveniences::

    python -m repro list                 # what can I run?
    python -m repro fig8 --scenario ...  # any experiment by short name
    python -m repro send 10110. --scenario RExclc-LSharedb
    python -m repro bands                # print calibrated latency bands
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.experiments import (  # noqa: F401  (resolved lazily below)
    common,
)

#: Short command name -> experiments module name.
EXPERIMENTS: dict[str, str] = {
    "fig2": "fig2_latency_cdf",
    "table1": "table1_scenarios",
    "fig7": "fig7_reception",
    "fig8": "fig8_bandwidth",
    "fig9": "fig9_noise",
    "fig10": "fig10_ecc",
    "fig11": "fig11_multibit",
    "sync": "sync_handshake",
    "mitigations": "mitigations",
    "ablations": "ablations",
    "detect": "detection_roc",
    "capacity": "capacity_analysis",
}


def _experiment_main(name: str) -> Callable[[list[str] | None], None]:
    import importlib

    module = importlib.import_module(f"repro.experiments.{EXPERIMENTS[name]}")
    return module.main


def cmd_list(_argv: list[str]) -> None:
    """Print the available commands."""
    print("experiments:")
    for short, module in EXPERIMENTS.items():
        print(f"  {short:12s} -> repro.experiments.{module}")
    print("utilities:")
    print("  send         transmit a bit string over a chosen scenario")
    print("  bands        print the calibrated latency bands")


def cmd_send(argv: list[str]) -> None:
    """Transmit a bit string through a covert-channel session."""
    parser = argparse.ArgumentParser(prog="repro send")
    parser.add_argument("bits", help="payload, e.g. 10110")
    parser.add_argument("--scenario", default="LExclc-LSharedb")
    parser.add_argument("--rate", type=float, default=None,
                        help="nominal Kbits/s")
    parser.add_argument("--noise", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.channel.config import ProtocolParams, scenario_by_name
    from repro.channel.session import ChannelSession, SessionConfig

    payload = [int(c) for c in args.bits if c in "01"]
    if not payload:
        parser.error("payload must contain 0/1 characters")
    params = ProtocolParams()
    if args.rate:
        params = params.at_rate(args.rate)
    session = ChannelSession(SessionConfig(
        scenario=scenario_by_name(args.scenario),
        params=params,
        seed=args.seed,
        noise_threads=args.noise,
    ))
    result = session.transmit(payload)
    print(f"sent     {''.join(map(str, result.sent))}")
    print(f"received {''.join(map(str, result.received))}")
    print(f"accuracy {result.accuracy * 100:.1f}%  "
          f"rate {result.achieved_rate_kbps:.0f} Kbit/s")


def cmd_bands(argv: list[str]) -> None:
    """Calibrate and print the latency bands (Figure 2's summary)."""
    parser = argparse.ArgumentParser(prog="repro bands")
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.channel.calibration import calibrate
    from repro.mem.hierarchy import Machine, MachineConfig
    from repro.sim.rng import RngStreams

    machine = Machine(MachineConfig(), RngStreams(args.seed))
    bands, _raw = calibrate(machine, samples=args.samples)
    for pair, band in sorted(bands.bands.items(), key=lambda kv: kv[1].lo):
        print(f"{pair.notation:8s} [{band.lo:6.1f}, {band.hi:6.1f}] cycles")
    if bands.dram:
        print(f"{'dram':8s} [{bands.dram.lo:6.1f}, {bands.dram.hi:6.1f}] cycles")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns an exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print()
        cmd_list([])
        return 0
    command, rest = argv[0], argv[1:]
    if command == "list":
        cmd_list(rest)
        return 0
    if command == "send":
        cmd_send(rest)
        return 0
    if command == "bands":
        cmd_bands(rest)
        return 0
    if command in EXPERIMENTS:
        _experiment_main(command)(rest)
        return 0
    print(f"unknown command {command!r}; try 'python -m repro list'",
          file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Quickstart: covertly transmit a message through coherence states.

Builds the full simulated stack — dual-socket machine, OS kernel with
KSM, trojan and spy processes — and sends the bytes of a short message
through the LExclc-LSharedb channel (Table I, row 1).

Run:  python examples/quickstart.py
"""

from repro import TABLE_I, ChannelSession, SessionConfig

MESSAGE = b"HI SPY"


def bytes_to_bits(data: bytes) -> list[int]:
    return [(byte >> (7 - i)) & 1 for byte in data for i in range(8)]


def bits_to_text(bits: list[int]) -> str:
    chars = []
    for i in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[i:i + 8]:
            value = (value << 1) | bit
        chars.append(chr(value) if 32 <= value < 127 else "?")
    return "".join(chars)


def main() -> None:
    scenario = TABLE_I[0]
    print(f"Scenario: {scenario.name} "
          f"({scenario.total_threads} trojan threads)")
    session = ChannelSession(SessionConfig(spec=scenario.name, seed=42))
    print("Shared page established via KSM dedup: "
          f"trojan VA {session.trojan_va:#x} and spy VA "
          f"{session.spy_va:#x} -> same physical frame")
    tc = session.bands.band_for(scenario.csc)
    tb = session.bands.band_for(scenario.csb)
    print(f"Calibrated bands: Tc={tc}  Tb={tb}")

    payload = bytes_to_bits(MESSAGE)
    result = session.transmit(payload)

    print(f"\nTrojan sent      : {MESSAGE.decode()} ({len(payload)} bits)")
    print(f"Spy decoded      : {bits_to_text(result.received)}")
    print(f"Raw bit accuracy : {result.accuracy * 100:.1f}%")
    print(f"Transmission rate: {result.achieved_rate_kbps:.0f} Kbits/s "
          f"(nominal {result.nominal_rate_kbps:.0f})")
    print(f"Spy samples      : {len(result.samples)} timed loads")


if __name__ == "__main__":
    main()

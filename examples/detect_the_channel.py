"""Defender's view: spotting a covert channel in coherence telemetry.

Attaches the event monitor to the machine, runs (a) a real covert
transmission and (b) benign workloads, and prints what the detector sees
for each — the signatures a hardware/hypervisor defender could act on.

Run:  python examples/detect_the_channel.py
"""

from repro import ChannelSession, SessionConfig, scenario_by_name
from repro.detection import ChannelDetector, EventMonitor
from repro.experiments.common import payload_bits
from repro.kernel.syscalls import Kernel
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def watch_attack() -> None:
    scenario = scenario_by_name("RExclc-LSharedb")
    session = ChannelSession(SessionConfig(spec=scenario.name, seed=5))
    monitor = EventMonitor(session.machine)
    monitor.attach()
    session.transmit(payload_bits(48))
    detections = ChannelDetector(monitor).scan(session.sim.global_clock)
    print(f"[attack: {scenario.name}]")
    if not detections:
        print("  nothing flagged (detector failed!)")
        return
    top = detections[0]
    print(f"  FLAGGED line {top.line:#x} score={top.score:.2f}")
    print(f"  cores involved: {sorted(top.cores)} "
          "(spy=0, trojan local=1,2 / remote=6)")
    for reason in top.reasons:
        print(f"   - {reason}")


def watch_benign() -> None:
    rng = RngStreams(17)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    monitor = EventMonitor(machine)
    monitor.attach()
    spawn_kernel_build(kernel, 6, avoid_cores={0})
    idle = kernel.create_process("idle")

    def waiter(cpu):
        yield from cpu.delay(800_000)

    kernel.spawn(idle, "w", waiter, core_id=0)
    sim.run()
    detections = ChannelDetector(monitor).scan(sim.global_clock)
    print("\n[benign: 6-thread kernel build]")
    if detections:
        print(f"  false positive! {detections[0]}")
    else:
        print("  nothing flagged (correct: compiles don't flush-storm "
              "shared lines)")


def main() -> None:
    watch_attack()
    watch_benign()


if __name__ == "__main__":
    main()

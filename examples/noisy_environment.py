"""Covert transfer in a noisy system, with and without error control.

Spawns kernel-build noise workers next to the trojan/spy pair (the
paper's Section VIII-C stress test), shows the raw-bit errors they
induce, then repeats the transfer through the reliable parity/CRC +
NACK retransmission channel, which delivers the payload intact at a
reduced effective rate.

Run:  python examples/noisy_environment.py
"""

import numpy as np

from repro import (
    ChannelSession,
    ProtocolParams,
    ReliableChannel,
    SessionConfig,
    scenario_by_name,
)
from repro.experiments.common import payload_bits

SCENARIO = scenario_by_name("RExclc-LSharedb")
RATE = 350


def raw_transfer(noise_threads: int) -> None:
    session = ChannelSession(SessionConfig(
        spec=SCENARIO.name,
        params=ProtocolParams().at_rate(RATE),
        seed=11,
        noise_threads=noise_threads,
    ))
    payload = payload_bits(200)
    session.transmit(payload[:24])  # let the noise reach steady state
    result = session.transmit(payload)
    a = result.alignment
    print(f"  {noise_threads} noise threads: accuracy "
          f"{result.accuracy * 100:5.1f}%  "
          f"(flips={a.flips}, lost={a.losses}, dups={a.duplicates})")


def reliable_transfer(noise_threads: int) -> None:
    rng = np.random.default_rng(2)
    payload = bytes(rng.integers(0, 256, 24, dtype=np.uint8))
    channel = ReliableChannel(
        SCENARIO,
        params=ProtocolParams().at_rate(RATE),
        seed=11,
        noise_threads=noise_threads,
        packet_bytes=8,
        max_attempts=60,
        checksum="crc16",
    )
    result = channel.send(payload)
    print(f"  {noise_threads} noise threads: delivered "
          f"{'INTACT' if result.intact else 'CORRUPT'} in "
          f"{result.transmissions} packet sends "
          f"(+{result.nacks} NACKs), effective "
          f"{result.effective_rate_kbps:.0f} Kbits/s")


def main() -> None:
    print("Raw channel under kernel-build noise (Section VIII-C):")
    for noise in (0, 2, 4):
        raw_transfer(noise)
    print("\nReliable channel: CRC-checked packets + NACK retransmission")
    print("(Figure 10's protocol; delivery is guaranteed, rate is paid):")
    for noise in (0, 2, 4):
        reliable_transfer(noise)


if __name__ == "__main__":
    main()

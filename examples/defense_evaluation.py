"""Evaluating the Section VIII-E defenses against the covert channel.

Runs the same covert transmission against each proposed mitigation:

1. targeted noise injection on shared pages (a monitor thread turns
   every E block into S),
2. KSM timeouts that un-merge pages with suspicious flush activity,
3. the hardware fix that lets the LLC answer E-state reads directly
   (merging the E and S latency bands),
4. per-core timing obfuscation.

Run:  python examples/defense_evaluation.py
"""

from repro import ChannelSession, ProtocolParams, SessionConfig, TABLE_I
from repro.errors import CalibrationError, SyncTimeoutError
from repro.experiments.common import payload_bits
from repro.mitigation import (
    attach_obfuscator,
    deploy_ksm_timeout,
    deploy_noise_injector,
    hardened_machine_config,
)

PAYLOAD = payload_bits(60)
PARAMS = ProtocolParams(max_reception_slots=3_000)


def attempt(session: ChannelSession) -> str:
    try:
        result = session.transmit(PAYLOAD)
        return f"{result.accuracy * 100:5.1f}% accuracy"
    except (SyncTimeoutError, CalibrationError):
        return "channel dead (spy cannot lock on)"


def main() -> None:
    scenario = TABLE_I[0]
    print(f"Attack: {scenario.name}, {len(PAYLOAD)}-bit secret\n")

    session = ChannelSession(SessionConfig(
        spec=scenario.name, seed=3, params=PARAMS))
    print(f"undefended           : {attempt(session)}")

    session = ChannelSession(SessionConfig(
        spec=scenario.name, seed=3, params=PARAMS))
    paddr = session.spy_proc.translate(session.spy_va)
    deploy_noise_injector(session.kernel, paddr, core_id=4,
                          period=PARAMS.slot_cycles / 4)
    print(f"noise injector       : {attempt(session)}")

    session = ChannelSession(SessionConfig(
        spec=scenario.name, seed=3, params=PARAMS))
    _thread, policy = deploy_ksm_timeout(session.kernel)
    outcome = attempt(session)
    print(f"KSM timeout          : {outcome} "
          f"(triggered={policy.triggered}, "
          f"unmerged={policy.unmerged_pages} pages)")

    try:
        session = ChannelSession(SessionConfig(
            spec=scenario.name, seed=3, params=PARAMS,
            machine=hardened_machine_config()))
        print(f"LLC direct E response: {attempt(session)}")
    except CalibrationError:
        print("LLC direct E response: channel dead "
              "(E and S bands merged; calibration fails)")

    try:
        session = ChannelSession(SessionConfig(
            spec=scenario.name, seed=3, params=PARAMS))
        attach_obfuscator(session.machine, {session.config.spy_core})
        session.bands = session._calibrate()
        print(f"timing obfuscation   : {attempt(session)}")
    except CalibrationError:
        print("timing obfuscation   : channel dead "
              "(no stable bands under obfuscation)")


if __name__ == "__main__":
    main()

"""A clflush-free attack: eviction sets discovered by timing alone.

Section VI-B notes the shared block can be flushed "through clflush or
an equivalent instruction, or through eviction of all the ways in the
set".  This example plays the fully-restricted attacker: no clflush, no
knowledge of physical addresses — the spy *discovers* an eviction set
for the covert line purely by timing, then runs the channel with
eviction-based flushing (slower, but instruction-free).

Run:  python examples/no_clflush_attack.py
"""

from repro import ChannelSession, ProtocolParams, SessionConfig, TABLE_I
from repro.channel.eviction import EvictionSetDiscovery
from repro.experiments.common import payload_bits


def main() -> None:
    scenario = TABLE_I[0]
    session = ChannelSession(SessionConfig(
        spec=scenario.name,
        params=ProtocolParams.for_eviction_flush(),
        seed=13,
        flush_method="evict",
    ))

    # Show that the spy could have found the eviction set itself, with
    # timing only (the session used kernel help for speed).
    discovery = EvictionSetDiscovery(
        session.kernel, session.spy_proc, core_id=session.config.spy_core
    )
    found = discovery.discover(session.spy_va, pool_pages=1200)
    print("Timing-only eviction-set discovery:")
    print(f"  candidates allocated : {discovery.stats.candidates_allocated} pages")
    print(f"  eviction tests       : {discovery.stats.eviction_tests}")
    print(f"  memory accesses      : {discovery.stats.accesses}")
    print(f"  minimal set found    : {len(found)} lines "
          f"(LLC is {session.config.machine.llc_assoc}-way)")

    payload = payload_bits(48)
    result = session.transmit(payload)
    print("\nClflush-free transmission "
          f"({scenario.name}, eviction flushing):")
    print(f"  accuracy : {result.accuracy * 100:.1f}%")
    print(f"  rate     : {result.achieved_rate_kbps:.0f} Kbit/s "
          "(vs ~340 with clflush — eviction sweeps are ~50x pricier)")


if __name__ == "__main__":
    main()

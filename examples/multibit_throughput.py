"""Throughput shoot-out: binary scenarios vs 2-bit symbol encoding.

Reproduces the headline of Section VIII-D interactively: binary channels
peak around 700-800 Kbits/s before accuracy collapses, while encoding
2 bits per symbol over all four latency bands sustains ~1.1 Mbits/s.

Run:  python examples/multibit_throughput.py
"""

from repro import (
    MultiBitSession,
    ProtocolParams,
    SessionConfig,
    SymbolParams,
    ChannelSession,
    scenario_by_name,
)
from repro.experiments.common import payload_bits

PAYLOAD = payload_bits(100)
RATES = (500, 800, 1100)


def binary_row(scenario_name: str) -> str:
    cells = []
    for rate in RATES:
        session = ChannelSession(SessionConfig(
            spec=scenario_name,
            params=ProtocolParams().at_rate(rate),
            seed=3,
        ))
        result = session.transmit(PAYLOAD)
        cells.append(f"{result.accuracy * 100:5.1f}%")
    return f"{scenario_name:22s} " + "  ".join(cells)


def multibit_row() -> str:
    cells = []
    for rate in RATES:
        session = MultiBitSession(
            symbol_params=SymbolParams().at_rate(rate), seed=3,
        )
        result = session.transmit(PAYLOAD)
        cells.append(f"{result.accuracy * 100:5.1f}%")
    return f"{'2-bit symbols':22s} " + "  ".join(cells)


def main() -> None:
    header = f"{'channel':22s} " + "  ".join(f"{r:>5d}K" for r in RATES)
    print(header)
    print("-" * len(header))
    for name in ("LExclc-LSharedb", "RExclc-LExclb", "RExclc-LSharedb"):
        print(binary_row(name))
    print(multibit_row())
    print("\nAccuracy at each nominal rate: the 2-bit symbol channel "
          "holds at 1.1 Mbps\nwhere binary channels have already "
          "degraded (paper Section VIII-D).")


if __name__ == "__main__":
    main()

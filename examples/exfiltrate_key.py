"""The paper's motivating attack: covert exfiltration of a secret key.

Section VII sketches the setting: a spy has captured ciphertext it
cannot read; a colluding trojan with access to the key transmits it
covertly through coherence states.  Here the trojan leaks a 128-bit key
over the RExclc-LSharedb channel (trojan threads on both sockets); the
spy reconstructs the key and decrypts the captured message.

The "cipher" is a toy XOR keystream — the point is the covert key
transfer, not the cryptography.

Run:  python examples/exfiltrate_key.py
"""

import numpy as np

from repro import ChannelSession, SessionConfig, scenario_by_name

SECRET_MESSAGE = b"wire $1M to account 8861, friday"


def keystream(key_bits: list[int], length: int) -> bytes:
    """Toy deterministic keystream from a 128-bit key."""
    seed = 0
    for bit in key_bits:
        seed = (seed << 1 | bit) & 0xFFFFFFFF
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, length, dtype=np.uint8))


def xor(data: bytes, pad: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, pad))


def main() -> None:
    rng = np.random.default_rng(1)
    key = [int(b) for b in rng.integers(0, 2, 128)]

    # The "victim side": the trojan's process encrypts with the key; the
    # spy has only the ciphertext.
    ciphertext = xor(SECRET_MESSAGE, keystream(key, len(SECRET_MESSAGE)))
    print(f"Spy captured ciphertext: {ciphertext.hex()}")

    # Covert key transfer through the coherence channel.
    scenario = scenario_by_name("RExclc-LSharedb")
    session = ChannelSession(SessionConfig(spec=scenario.name, seed=7))
    print(f"\nTransmitting 128-bit key over {scenario.name} "
          f"({scenario.local_threads} local + {scenario.remote_threads} "
          "remote trojan threads)...")
    result = session.transmit(key)
    print(f"Raw bit accuracy: {result.accuracy * 100:.1f}% at "
          f"{result.achieved_rate_kbps:.0f} Kbits/s")

    recovered = result.received[:128]
    plaintext = xor(ciphertext, keystream(recovered, len(ciphertext)))
    print(f"\nSpy recovered key bits match: "
          f"{recovered == key} ({sum(a == b for a, b in zip(recovered, key))}"
          f"/128 bits)")
    print(f"Spy decrypts: {plaintext!r}")
    assert plaintext == SECRET_MESSAGE, "exfiltration failed"
    print("\nSecret exfiltrated without any direct communication.")


if __name__ == "__main__":
    main()

"""Section VII-A / Section IV benches: synchronization and KSM setup."""

from repro.experiments import sync_handshake
from repro.kernel.syscalls import Kernel
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def test_sync_handshake_duration(once):
    result = once(sync_handshake.run, seed=0)
    assert result["synced"]
    # Paper: ~90 ms average at 2.67 GHz.
    assert 40 <= result["duration_ms"] <= 200


def test_ksm_merge_setup(once):
    """Section IV: dedup force-creates the shared physical page."""

    def setup():
        rng = RngStreams(0)
        machine = Machine(MachineConfig(), rng)
        kernel = Kernel(machine, Simulator(machine.stats), rng)
        trojan = kernel.create_process("trojan")
        spy = kernel.create_process("spy")
        va_t, va_s = kernel.setup_ksm_shared_page(trojan, spy)
        return kernel, trojan, spy, va_t, va_s

    kernel, trojan, spy, va_t, va_s = once(setup)
    assert trojan.translate(va_t) == spy.translate(va_s)
    assert kernel.ksm.stats.pages_merged == 1
    assert kernel.ksm.stats.pages_sharing == 2

"""Figure 10 bench: effective rate with parity+NACK retransmission."""

from repro.channel.config import TABLE_I
from repro.experiments import fig10_ecc

#: Two representative scenarios keep the bench tractable; the driver
#: sweeps all six.
SCENARIOS = [TABLE_I[0], TABLE_I[3]]


def test_fig10_reliable_transfer(once):
    result = once(
        fig10_ecc.run,
        seed=0,
        payload_bytes=16,
        packet_bytes=4,
        scenarios=SCENARIOS,
    )
    for name, per_noise in result["table"].items():
        base = per_noise["no-noise"]
        # 100% bit recovery is the scheme's guarantee (paper Sec VIII-C).
        assert base["intact"], name
        assert per_noise["medium"]["intact"], name
        assert per_noise["high"]["intact"], name
        # Retransmission costs rate monotonically with noise pressure.
        assert (per_noise["medium"]["effective_kbps"]
                <= base["effective_kbps"] + 1e-9), name
        # NACK accounting: one acknowledgement per packet transmission.
        assert base["nacks"] >= result["table"][name]["no-noise"]["transmissions"] - 1

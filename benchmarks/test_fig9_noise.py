"""Figure 9 bench: accuracy under co-located kernel-build noise."""

import numpy as np

from repro.experiments import fig9_noise

LEVELS = (0, 2, 8)


def test_fig9_noise_degradation(once):
    result = once(
        fig9_noise.run, seed=0, bits=100, noise_levels=LEVELS, trials=2,
    )
    curves = result["curves"]
    assert len(curves) == 6
    for name, points in curves.items():
        acc = dict(points)
        # clean baseline
        assert acc[0] >= 0.97, name
        # monotone-ish degradation: the 8-thread point never beats clean
        assert acc[8] <= acc[0] + 1e-9, name
    # Aggregate: heavy noise visibly degrades the average channel.
    mean_clean = np.mean([dict(p)[0] for p in curves.values()])
    mean_heavy = np.mean([dict(p)[8] for p in curves.values()])
    assert mean_heavy < mean_clean - 0.01
    # Even under heavy noise the channel remains usable (paper: >=77%).
    assert mean_heavy >= 0.77

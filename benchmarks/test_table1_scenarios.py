"""Table I bench: all six scenarios transmit with their paper placement."""

from repro.experiments import table1_scenarios


def test_table1_all_scenarios(once):
    result = once(table1_scenarios.run, seed=0, bits=40)
    assert len(result["rows"]) == 6
    for row in result["rows"]:
        paper = table1_scenarios.PAPER_TABLE_I[row["scenario"]]
        ours = (row["total_threads"], row["local_threads"],
                row["remote_threads"])
        assert ours == paper, row["scenario"]
        # the paper reports 100% decode accuracy for all six at base rate
        assert row["accuracy"] >= 0.95, row["scenario"]

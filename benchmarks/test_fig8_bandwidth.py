"""Figure 8 bench: raw-bit accuracy vs transmission rate."""

import numpy as np

from repro.channel.config import scenario_by_name
from repro.experiments import fig8_bandwidth

RATES = (200, 500, 800, 1000)


def test_fig8_accuracy_vs_rate(once):
    result = once(fig8_bandwidth.run, seed=0, bits=100, rates=RATES)
    curves = result["curves"]
    assert len(curves) == 6
    for name, points in curves.items():
        acc = dict(points)
        # near-perfect at low rate...
        assert acc[200.0] >= 0.97, name
        # ...and no better at the 1 Mbps extreme than at 200 Kbps.
        assert acc[1000.0] <= acc[200.0] + 1e-9, name
    # Aggregate rolloff: mean accuracy at 1 Mbps clearly below low-rate.
    mean_low = np.mean([dict(p)[200.0] for p in curves.values()])
    mean_high = np.mean([dict(p)[1000.0] for p in curves.values()])
    assert mean_high < mean_low
    # The paper's headline band: high accuracy is sustained at 700-800
    # Kbps (its binary peak), e.g. RExclc-LSharedb at ~96% @ 800.
    exception = dict(curves[scenario_by_name("RExclc-LSharedb").name])
    assert exception[800.0] >= 0.9

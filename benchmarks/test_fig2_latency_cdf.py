"""Figure 2 / Section V bench: latency bands per (location, state) pair."""

from repro.experiments import fig2_latency_cdf


def test_fig2_latency_bands(once):
    result = once(fig2_latency_cdf.run, samples=1000, seed=0)
    medians = result["medians"]
    # Section V reference points: local S ~98 cycles, local E ~124.
    assert abs(medians["LShared"] - 98) < 5
    assert abs(medians["LExcl"] - 124) < 5
    # The four coherence bands plus DRAM are strictly ordered...
    assert (medians["LShared"] < medians["LExcl"] < medians["RShared"]
            < medians["RExcl"] < medians["dram"])
    # ...and clearly separated (Figure 2's distinct CDF steps).
    assert all(sep > 1.5 for sep in result["separations"].values())

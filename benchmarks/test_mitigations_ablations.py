"""Section VIII-E benches: mitigation effectiveness and design ablations."""

from repro.experiments import ablations, mitigations


def test_mitigations_close_the_channel(once):
    result = once(mitigations.run, seed=0, bits=60)
    outcomes = result["outcomes"]
    assert outcomes["undefended"] >= 0.95
    # Every defense must cut the channel's accuracy drastically.
    assert outcomes["noise injector"] <= 0.6
    assert outcomes["llc direct E response"] <= 0.6
    assert outcomes["timing obfuscation"] <= 0.6
    assert outcomes["ksm timeout triggered"]
    assert outcomes["ksm timeout"] < 1.0


def test_ablation_protocol_variants(once):
    """F/O states don't change the channel (paper Sec II-B / VIII-E)."""
    outcomes = once(ablations.run_protocols, seed=0, bits=40)
    for protocol in ("mesi", "mesif", "moesi"):
        assert outcomes[protocol] >= 0.95, protocol


def test_ablation_inclusion(once):
    """Non-inclusive LLCs keep distinct latency profiles (Sec VIII-E)."""
    outcomes = once(ablations.run_inclusion, seed=0, bits=40)
    assert outcomes["inclusive"] >= 0.95
    assert outcomes["non-inclusive"] >= 0.7


def test_ablation_band_gap_vs_robustness(once):
    """Record gap-vs-robustness at 1 Mbps; assert a usability floor.

    The paper attributes Fig 8's high-rate exceptions to wide Tc/Tb band
    gaps.  In this reproduction the dominant high-rate error source is
    the trojan's state re-establishment time (see EXPERIMENTS.md), so no
    gap-ordering is asserted — only that every scenario stays usable and
    that calibration produced strictly positive gaps.
    """
    result = once(ablations.run_band_gap, seed=0, bits=80, rate=1000.0)
    for row in result["rows"]:
        assert row["gap_cycles"] > 0, row["scenario"]
        assert row["accuracy"] >= 0.75, row["scenario"]


def test_ablation_flush_methods(once):
    """Section VI-B: eviction-based flushing works, at ~10x lower rate."""
    outcomes = once(ablations.run_flush_methods, seed=0, bits=32)
    assert outcomes["clflush"]["accuracy"] >= 0.95
    assert outcomes["evict"]["accuracy"] >= 0.9
    assert (outcomes["evict"]["rate_kbps"]
            < outcomes["clflush"]["rate_kbps"] / 3)


def test_ablation_home_agent(once):
    """Section VIII-E: home-directory hops split the miss-service bands."""
    outcome = once(ablations.run_home_agent, seed=0)
    assert outcome["split_cycles"] > 20

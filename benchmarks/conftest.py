"""Benchmark harness configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark
regenerates one of the paper's tables or figures (scaled down so a full
sweep stays tractable) and asserts the *shape* the paper reports — band
ordering, accuracy knees, noise degradation, multi-bit speedup — rather
than absolute numbers, per DESIGN.md's substitution statement.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are heavy)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run

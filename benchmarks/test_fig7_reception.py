"""Figures 6-7 bench: 100-bit pattern transmission and spy reception."""

from repro.experiments import fig7_reception


def test_fig7_reception_all_scenarios(once):
    result = once(fig7_reception.run, seed=0, bits=100)
    assert len(result["payload"]) == 100  # Figure 6's 100-bit secret
    for name, outcome in result["results"].items():
        # Paper: "the spy is able to correctly decipher the transmitted
        # bits for all 6 attack scenarios with 100% accuracy".
        assert outcome.accuracy == 1.0, name
        # Both Tc and Tb bands appear in the reception trace.
        labels = {s.label for s in outcome.samples}
        assert {"c", "b"} <= labels, name

"""Figure 11 bench: 2-bit symbols reach ~1.1 Mbps vs ~700 Kbps binary."""

from repro.channel.config import ProtocolParams, scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig
from repro.experiments import fig11_multibit
from repro.experiments.common import payload_bits


def test_fig11_multibit_peak(once):
    result = once(fig11_multibit.run, seed=0, bits=120, rates=(900, 1100))
    points = {p["rate_kbps"]: p for p in result["points"]}
    # The paper's peak: ~1.1 Mbps at high accuracy with 2-bit symbols.
    assert points[1100.0]["accuracy"] >= 0.95
    assert points[1100.0]["achieved_kbps"] >= 1000
    # All four symbol values appear in the first nine symbols (Fig 11).
    assert set(result["trace"].sent_symbols[:9]) == {0, 1, 2, 3}


def test_fig11_speedup_over_binary(once):
    """Multi-bit at 1.1 Mbps is accurate where binary at 1.1 Mbps is not."""
    from repro.channel.symbols import MultiBitSession, SymbolParams

    def run():
        payload = payload_bits(100)
        binary = ChannelSession(SessionConfig(
            spec="RExclc-LSharedb",
            params=ProtocolParams().at_rate(1100),
            seed=0,
        )).transmit(payload)
        multibit = MultiBitSession(
            symbol_params=SymbolParams().at_rate(1100), seed=0,
        ).transmit(payload)
        return binary, multibit

    binary, multibit = once(run)
    assert multibit.accuracy > binary.accuracy
    assert multibit.accuracy >= 0.95

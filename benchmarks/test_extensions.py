"""Benches for the extension experiments: detection ROC and capacity."""

from repro.experiments import capacity_analysis, detection_roc


def test_detection_roc(once):
    """Every Table I attack is flagged; benign workloads are not."""
    result = once(detection_roc.run, seed=0, bits=32)
    assert result["true_positives"] == result["attacks"] == 6
    assert result["false_positives"] == 0


def test_capacity_analysis(once):
    """Capacity mirrors the paper's bandwidth story in bits/symbol."""
    result = once(capacity_analysis.run, seed=0, bits=160)
    points = {p["label"]: p for p in result["points"]}
    # binary at a comfortable rate carries ~1 bit/symbol
    assert points["binary@400K noise=0"]["capacity_bits"] >= 0.95
    # the 2-bit symbol channel nearly doubles it at its peak rate
    multibit = points["2-bit symbols@1100K"]
    assert multibit["capacity_bits"] >= 1.8
    assert multibit["capacity_kbps"] >= 1000
    # noise costs capacity but does not kill the channel
    noisy = points["binary@400K noise=4"]
    assert 0.4 <= noisy["capacity_bits"] <= 1.0
